"""The plan service: all Plan/Cost traffic flows through here.

Every layer of the framework -- suite construction, compression,
correctness runs, query generation, the analyzer smoke checks, the CLI and
the benchmarks -- needs ``Plan(q)`` / ``Cost(q, ¬R)`` answers.  Instead of
each layer hand-rolling its own :class:`Optimizer`, a single
:class:`PlanService` serves those requests:

* **Memoization.**  Results are cached in-process under
  ``(tree.fingerprint(), config)``; structurally equal trees share one
  optimization even when their column bindings differ.
* **Persistence.**  With a ``cache_dir``, cost/metadata records survive
  across runs, keyed by an environment fingerprint over the rule registry,
  catalog DDL and table statistics (see :mod:`repro.service.cache`).  Plans
  are recomputed per process; costs and rule sets are served from disk.
* **Parallelism.**  :meth:`optimize_many` fans a batch over a
  ``ProcessPoolExecutor`` (``workers > 1``) with deterministic result
  ordering, deduplicating identical requests within the batch first.

Construction of :class:`Optimizer` instances is an implementation detail of
this module; no other package should instantiate one directly.
"""

from __future__ import annotations

import hashlib
import pickle
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.catalog.schema import Catalog
from repro.catalog.stats import StatsRepository
from repro.logical.operators import LogicalOp
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.optimizer.config import DEFAULT_CONFIG, OptimizerConfig
from repro.optimizer.engine import Optimizer
from repro.optimizer.result import OptimizationError, OptimizeResult
from repro.rules.registry import RuleRegistry, default_registry
from repro.service import worker as _worker
from repro.service.cache import PlanDiskCache, environment_fingerprint
from repro.storage.database import Database

#: One request: a bare tree (service default config) or (tree, config).
PlanRequest = Union[LogicalOp, Tuple[LogicalOp, Optional[OptimizerConfig]]]

_CacheKey = Tuple[str, OptimizerConfig]


@dataclass
class ServiceStats:
    """Cache/traffic counters for one :class:`PlanService`.

    ``requests`` counts every optimize/cost request (including batch
    members); ``computed`` counts actual optimizer runs.  The difference is
    absorbed by the two hit counters and by within-batch deduplication.
    """

    requests: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    computed: int = 0
    errors: int = 0
    batches: int = 0
    parallel_tasks: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def as_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "hits": self.hits,
            "computed": self.computed,
            "errors": self.errors,
            "batches": self.batches,
            "parallel_tasks": self.parallel_tasks,
        }


@dataclass
class _Entry:
    """One memoized outcome: a full result or a remembered failure."""

    result: Optional[OptimizeResult] = None
    error: Optional[str] = None

    @property
    def cost(self) -> float:
        return self.result.cost if self.result is not None else float("inf")


@dataclass
class _Pending:
    """Bookkeeping for one deduplicated computation inside a batch."""

    tree: LogicalOp
    config: OptimizerConfig
    indices: List[int] = field(default_factory=list)


class PlanService:
    """Fingerprint-cached, optionally parallel Plan/Cost server."""

    def __init__(
        self,
        database: Optional[Database] = None,
        *,
        catalog: Optional[Catalog] = None,
        stats: Optional[StatsRepository] = None,
        registry: Optional[RuleRegistry] = None,
        config: OptimizerConfig = DEFAULT_CONFIG,
        workers: int = 1,
        cache_dir: Optional[Path] = None,
        memory_cache: bool = True,
        memory_limit: Optional[int] = 20_000,
        tracer: Tracer = NULL_TRACER,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if database is not None:
            catalog = catalog or database.catalog
            stats = stats or database.stats_repository()
        if catalog is None or stats is None:
            raise ValueError(
                "PlanService needs a database, or a catalog plus stats"
            )
        #: The database this service was constructed over, when one was
        #: given.  Planning itself only needs catalog + stats; the handle
        #: lets execution-layer clients (the differential backend fleet,
        #: the CLI) recover the rows behind the plans they request.
        self.database = database
        self.catalog = catalog
        self.stats = stats
        self.registry = registry or default_registry()
        self.config = config
        self.workers = max(1, int(workers))
        self.counters = ServiceStats()
        #: Observability hooks (see :mod:`repro.obs`): the tracer records
        #: cache/compute events and is handed to every Optimizer this
        #: service constructs; the metrics registry mirrors
        #: :class:`ServiceStats` as ``service.*`` counters and aggregates
        #: per-rule optimizer counters, including worker-process merges.
        self.tracer = tracer
        self.metrics = metrics
        #: Resolved Counter handles, so the per-request path validates
        #: each ``service.*`` series name once (see ``_bump``).
        self._metric_counters: Dict[str, object] = {}
        self._memory_cache_enabled = memory_cache
        #: FIFO bound on in-process entries; one-shot trees from generation
        #: campaigns age out first, long before the reusable suite traffic.
        self.memory_limit = memory_limit
        self._entries: Dict[_CacheKey, _Entry] = {}
        self._cost_records: Dict[_CacheKey, Dict] = {}
        self._optimizers: Dict[OptimizerConfig, Optimizer] = {}
        #: Cross-batch execution results, keyed by (plan signature,
        #: projection cids, database fingerprint); see execute_many.
        self._exec_cache: Dict[Tuple, object] = {}
        self._exec_cache_limit = 10_000
        if cache_dir is not None:
            env = environment_fingerprint(catalog, stats, self.registry)
            self._disk: Optional[PlanDiskCache] = PlanDiskCache(
                Path(cache_dir), env
            )
        else:
            self._disk = None

    # ------------------------------------------------------------- plumbing

    def _bump(self, name: str) -> None:
        """Increment one :class:`ServiceStats` field and its metric twin."""
        setattr(self.counters, name, getattr(self.counters, name) + 1)
        if self.metrics is not None:
            counter = self._metric_counters.get(name)
            if counter is None:
                counter = self._metric_counters[name] = self.metrics.counter(
                    f"service.{name}"
                )
            counter.inc()

    def _resolve_config(self, config: Optional[OptimizerConfig]) -> OptimizerConfig:
        return self.config if config is None else config

    def _key(self, tree: LogicalOp, config: OptimizerConfig) -> _CacheKey:
        return (tree.fingerprint(), config)

    def _disk_key(self, key: _CacheKey) -> str:
        fingerprint, config = key
        payload = f"{fingerprint}|{config.cache_token()}".encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def _optimizer(self, config: OptimizerConfig) -> Optimizer:
        optimizer = self._optimizers.get(config)
        if optimizer is None:
            optimizer = Optimizer(
                self.catalog, self.stats, self.registry, config,
                tracer=self.tracer, metrics=self.metrics,
            )
            self._optimizers[config] = optimizer
        return optimizer

    def _record_for(self, key: _CacheKey, entry: _Entry) -> Dict:
        fingerprint, config = key
        record = {
            "fingerprint": fingerprint,
            "config": config.cache_token(),
            "error": entry.error,
        }
        if entry.result is not None:
            result = entry.result
            record.update(
                cost=result.cost,
                rules_exercised=sorted(result.rules_exercised),
                rule_interactions=[
                    list(pair) for pair in sorted(result.rule_interactions)
                ],
                memo_stats={
                    "group_count": result.stats.group_count,
                    "expr_count": result.stats.expr_count,
                    "rule_applications": result.stats.rule_applications,
                    "budget_exhausted": result.stats.budget_exhausted,
                },
            )
        return record

    def _store(self, key: _CacheKey, entry: _Entry) -> None:
        if self._memory_cache_enabled:
            if (
                self.memory_limit is not None
                and len(self._entries) >= self.memory_limit
            ):
                self._entries.pop(next(iter(self._entries)))
            self._entries[key] = entry
        if self._disk is not None:
            self._disk.put(self._disk_key(key), self._record_for(key, entry))

    def _compute(self, tree: LogicalOp, config: OptimizerConfig) -> _Entry:
        self._bump("computed")
        with self.tracer.span("service.compute", cat="service"):
            try:
                return _Entry(result=self._optimizer(config).optimize(tree))
            except OptimizationError as exc:
                self._bump("errors")
                return _Entry(error=str(exc))

    # ------------------------------------------------------------- requests

    def optimize(
        self, tree: LogicalOp, config: Optional[OptimizerConfig] = None
    ) -> OptimizeResult:
        """``Plan(q)`` / ``Plan(q, ¬R)``: the full optimization result.

        Raises :class:`OptimizationError` when no plan exists (failures are
        memoized too, so repeated requests do not re-search).
        """
        config = self._resolve_config(config)
        key = self._key(tree, config)
        self._bump("requests")
        entry = self._entries.get(key)
        if entry is not None:
            self._bump("memory_hits")
            if self.tracer.enabled:
                self.tracer.event(
                    "service.cache", cat="service",
                    outcome="memory_hit", request="optimize",
                )
        else:
            if self.tracer.enabled:
                self.tracer.event(
                    "service.cache", cat="service",
                    outcome="miss", request="optimize",
                )
            entry = self._compute(tree, config)
            self._store(key, entry)
        if entry.result is None:
            raise OptimizationError(entry.error or "optimization failed")
        return entry.result

    def cost(
        self, tree: LogicalOp, config: Optional[OptimizerConfig] = None
    ) -> float:
        """``Cost(q, ¬R)``; ``inf`` when no plan exists.

        Unlike :meth:`optimize` this can be answered from the persistent
        disk cache, because it needs no plan object.
        """
        config = self._resolve_config(config)
        key = self._key(tree, config)
        self._bump("requests")
        entry = self._entries.get(key)
        if entry is not None:
            self._bump("memory_hits")
            if self.tracer.enabled:
                self.tracer.event(
                    "service.cache", cat="service",
                    outcome="memory_hit", request="cost",
                )
            return entry.cost
        record = self._lookup_record(key)
        if record is not None:
            self._bump("disk_hits")
            if self.tracer.enabled:
                self.tracer.event(
                    "service.cache", cat="service",
                    outcome="disk_hit", request="cost",
                )
            return self._record_cost(record)
        if self.tracer.enabled:
            self.tracer.event(
                "service.cache", cat="service",
                outcome="miss", request="cost",
            )
        entry = self._compute(tree, config)
        self._store(key, entry)
        return entry.cost

    def _lookup_record(self, key: _CacheKey) -> Optional[Dict]:
        record = self._cost_records.get(key)
        if record is not None:
            return record
        if self._disk is None:
            return None
        record = self._disk.get(self._disk_key(key))
        if record is not None and self._memory_cache_enabled:
            self._cost_records[key] = record
        return record

    @staticmethod
    def _record_cost(record: Dict) -> float:
        if record.get("error") is not None:
            return float("inf")
        return float(record["cost"])

    # -------------------------------------------------------------- batches

    def optimize_many(
        self,
        requests: Sequence[PlanRequest],
        return_errors: bool = False,
    ) -> List[Union[OptimizeResult, OptimizationError]]:
        """Optimize a batch with deterministic result ordering.

        Identical ``(fingerprint, config)`` requests within the batch are
        computed once; with ``workers > 1`` the distinct computations fan
        out over a process pool.  With ``return_errors`` failed requests
        yield their :class:`OptimizationError` in place; otherwise the
        first failure raises after the batch completes.
        """
        normalized: List[Tuple[LogicalOp, OptimizerConfig]] = []
        for request in requests:
            if isinstance(request, LogicalOp):
                normalized.append((request, self.config))
            else:
                tree, config = request
                normalized.append((tree, self._resolve_config(config)))

        outcomes: List[Optional[_Entry]] = [None] * len(normalized)
        pending: Dict[_CacheKey, _Pending] = {}
        for index, (tree, config) in enumerate(normalized):
            key = self._key(tree, config)
            self._bump("requests")
            entry = self._entries.get(key)
            if entry is not None:
                self._bump("memory_hits")
                outcomes[index] = entry
                continue
            slot = pending.get(key)
            if slot is None:
                slot = _Pending(tree=tree, config=config)
                pending[key] = slot
            slot.indices.append(index)

        if pending:
            self._bump("batches")
            if self.tracer.enabled:
                self.tracer.event(
                    "service.batch", cat="service",
                    requests=len(normalized), distinct=len(pending),
                    hits=len(normalized) - sum(
                        len(slot.indices) for slot in pending.values()
                    ),
                )
            with self.tracer.span("service.batch_compute", cat="service"):
                computed = self._compute_batch(pending)
            for key, entry in computed.items():
                self._store(key, entry)
                for index in pending[key].indices:
                    outcomes[index] = entry

        results: List[Union[OptimizeResult, OptimizationError]] = []
        for entry in outcomes:
            assert entry is not None
            if entry.result is not None:
                results.append(entry.result)
            else:
                error = OptimizationError(entry.error or "optimization failed")
                if not return_errors:
                    raise error
                results.append(error)
        return results

    def cost_many(self, requests: Sequence[PlanRequest]) -> List[float]:
        """Batch form of :meth:`cost` (disk-cache aware, ``inf`` on failure)."""
        normalized: List[Tuple[LogicalOp, Optional[OptimizerConfig]]] = []
        for request in requests:
            if isinstance(request, LogicalOp):
                normalized.append((request, None))
            else:
                normalized.append(request)

        costs: List[Optional[float]] = [None] * len(normalized)
        missing: List[int] = []
        for index, (tree, config) in enumerate(normalized):
            resolved = self._resolve_config(config)
            key = self._key(tree, resolved)
            entry = self._entries.get(key)
            if entry is not None:
                self._bump("requests")
                self._bump("memory_hits")
                costs[index] = entry.cost
                continue
            record = self._lookup_record(key)
            if record is not None:
                self._bump("requests")
                self._bump("disk_hits")
                costs[index] = self._record_cost(record)
                continue
            missing.append(index)

        if missing:
            batch = [normalized[index] for index in missing]
            outcomes = self.optimize_many(batch, return_errors=True)
            for index, outcome in zip(missing, outcomes):
                if isinstance(outcome, OptimizationError):
                    costs[index] = float("inf")
                else:
                    costs[index] = outcome.cost
        return [float(cost) for cost in costs]  # every slot is filled above

    # ------------------------------------------------------- plan execution

    def execute_many(
        self,
        requests: Sequence[Tuple[object, Optional[Tuple]]],
        *,
        database: Optional[Database] = None,
        execution=None,
    ) -> List["BatchItem"]:
        """Execute physical plans batched, with a cross-batch result cache.

        ``requests`` is a sequence of ``(physical plan, output columns)``
        pairs; returns one :class:`repro.engine.batch.BatchItem` per
        request, in order.  On top of the within-batch coalescing done by
        :func:`repro.engine.batch.execute_many`, results are cached
        across calls keyed by ``(plan signature, projection, database
        fingerprint)``, so campaign loops that re-execute the same
        baseline plan per mutant pay for it once (``exec.cache_hits``).
        The database fingerprint in the key invalidates stale entries
        the moment any table is mutated.
        """
        from repro.engine.batch import BatchItem, execute_many
        from repro.engine.config import default_execution_config
        from repro.physical.operators import plan_signature

        database = database or self.database
        if database is None:
            raise ValueError(
                "PlanService.execute_many needs a database "
                "(pass one here or at construction)"
            )
        if execution is None:
            execution = default_execution_config()
        db_token = database.data_fingerprint()

        items: List[Optional[BatchItem]] = [None] * len(requests)
        misses: List[int] = []
        miss_requests: List[Tuple[object, Optional[Tuple]]] = []
        miss_keys: List[Tuple] = []
        hits = 0
        for index, (plan, outputs) in enumerate(requests):
            out_key = (
                tuple(c.cid for c in outputs) if outputs is not None else None
            )
            key = (plan_signature(plan), out_key, db_token)
            cached = self._exec_cache.get(key)
            if cached is not None:
                items[index] = BatchItem(
                    result=cached.result, error=cached.error, coalesced=True
                )
                hits += 1
            else:
                misses.append(index)
                miss_requests.append((plan, outputs))
                miss_keys.append(key)
        if hits and self.metrics is not None:
            self.metrics.counter("exec.cache_hits").inc(hits)

        if misses:
            executed = execute_many(
                miss_requests,
                database,
                config=execution,
                tracer=self.tracer,
                metrics=self.metrics,
            )
            for index, key, item in zip(misses, miss_keys, executed):
                items[index] = item
                if key not in self._exec_cache:
                    self._exec_cache[key] = item
            # FIFO bound: one-shot plans age out first.
            limit = self._exec_cache_limit
            while len(self._exec_cache) > limit:
                self._exec_cache.pop(next(iter(self._exec_cache)))
        return items

    # ------------------------------------------------------- pool execution

    def _compute_batch(
        self, pending: Dict[_CacheKey, _Pending]
    ) -> Dict[_CacheKey, _Entry]:
        tasks = list(pending.items())
        if self.workers > 1 and len(tasks) > 1:
            parallel = self._compute_parallel(tasks)
            if parallel is not None:
                return parallel
        computed: Dict[_CacheKey, _Entry] = {}
        for key, slot in tasks:
            computed[key] = self._compute(slot.tree, slot.config)
        return computed

    def _compute_parallel(
        self, tasks: List[Tuple[_CacheKey, _Pending]]
    ) -> Optional[Dict[_CacheKey, _Entry]]:
        """Fan ``tasks`` over a process pool; ``None`` falls back to serial
        (e.g. unpicklable environment or a sandbox without subprocesses)."""
        from concurrent.futures import ProcessPoolExecutor

        try:
            payload = pickle.dumps((self.catalog, self.stats, self.registry))
        except Exception as exc:  # pragma: no cover - defensive
            warnings.warn(f"plan service: environment not picklable ({exc}); "
                          "running batch serially", stacklevel=2)
            return None
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(tasks)),
                initializer=_worker.init_worker,
                initargs=(payload, self.metrics is not None),
            ) as pool:
                indexed = [
                    (position, slot.tree, slot.config)
                    for position, (_, slot) in enumerate(tasks)
                ]
                computed: Dict[_CacheKey, _Entry] = {}
                for position, result, error, metric_delta in pool.map(
                    _worker.optimize_task, indexed
                ):
                    key = tasks[position][0]
                    self._bump("computed")
                    self._bump("parallel_tasks")
                    if metric_delta is not None and self.metrics is not None:
                        # Fold this task's optimizer counters (measured in
                        # the worker process) into the parent registry.
                        self.metrics.merge(metric_delta)
                        self.metrics.counter("service.worker_merges").inc()
                    if error is not None:
                        self._bump("errors")
                        computed[key] = _Entry(error=error)
                    else:
                        computed[key] = _Entry(result=result)
                return computed
        except Exception as exc:  # pragma: no cover - defensive
            warnings.warn(
                f"plan service: process pool failed ({exc}); "
                "running batch serially",
                stacklevel=2,
            )
            return None
