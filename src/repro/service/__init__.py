"""The service layer: centralized, cached, parallel Plan/Cost serving.

:class:`PlanService` is the single gateway to the optimizer.  All framework
layers (testing, analysis, CLI, benchmarks) route their ``Plan(q)`` /
``Cost(q, ¬R)`` requests through a service instance instead of constructing
:class:`repro.optimizer.engine.Optimizer` objects themselves.
"""

from repro.service.cache import (
    PlanDiskCache,
    cache_stats,
    clear_cache,
    default_cache_dir,
    environment_fingerprint,
)
from repro.service.plan_service import PlanRequest, PlanService, ServiceStats

__all__ = [
    "PlanDiskCache",
    "PlanRequest",
    "PlanService",
    "ServiceStats",
    "cache_stats",
    "clear_cache",
    "default_cache_dir",
    "environment_fingerprint",
]
