"""Persistent cross-run cache for plan-service results.

The disk cache stores one small JSON record per ``(tree fingerprint,
config)`` request: the plan cost, the exercised rule set, the derived rule
interactions and the memo search counters -- everything the framework's
*cost* traffic (``Cost(q, ¬R)``) needs.  Physical plans themselves are
deliberately **not** persisted: plans embed :class:`Column` objects whose
``cid`` values are process-local, so rehydrating a plan in a later run could
alias freshly bound columns.  Cost/metadata records carry no such identity.

Records live under ``<root>/<environment fingerprint>/``, where the
environment fingerprint hashes the rule registry, the catalog DDL and the
table statistics -- any change to rules, schema or data invalidates the
cache by construction (the key simply never matches again).

All set-valued fields (``rules_exercised``, ``rule_interactions``) are
serialized in sorted order so cache files are byte-stable run to run.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional

from repro.catalog.schema import Catalog
from repro.catalog.stats import StatsRepository
from repro.rules.registry import RuleRegistry


def default_cache_dir() -> Path:
    """The persistent cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro/plans``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "plans"


def environment_fingerprint(
    catalog: Catalog, stats: StatsRepository, registry: RuleRegistry
) -> str:
    """Hash of everything that can change an optimization outcome besides
    the query tree and the config: registry, catalog and statistics."""
    digest = hashlib.sha256()
    digest.update(catalog.ddl().encode("utf-8"))
    for rule in registry.all_rules:
        digest.update(f"|{rule.name}:{type(rule).__name__}".encode("utf-8"))
    for table_name in sorted(stats.table_names()):
        table_stats = stats.get(table_name)
        digest.update(f"|{table_name}={table_stats.row_count}".encode("utf-8"))
        for column_name in table_stats.column_names():
            column = table_stats.column(column_name)
            digest.update(
                f"|{column_name}:{column.distinct_count}:"
                f"{column.null_fraction!r}:{column.min_value!r}:"
                f"{column.max_value!r}".encode("utf-8")
            )
    return digest.hexdigest()[:20]


class PlanDiskCache:
    """One environment's directory of JSON result records."""

    def __init__(self, root: Path, environment: str) -> None:
        self.root = Path(root)
        self.directory = self.root / environment

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[Dict]:
        path = self._path(key)
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None

    def put(self, key: str, record: Dict) -> None:
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self._path(key)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(record, indent=2, sort_keys=True))
            tmp.replace(path)
        except OSError:
            # A read-only or full cache directory must never fail a request.
            pass


def cache_stats(root: Path) -> Dict:
    """Entry/size summary of a cache root, per environment directory."""
    root = Path(root)
    environments: Dict[str, Dict[str, int]] = {}
    total_entries = 0
    total_bytes = 0
    if root.is_dir():
        for env_dir in sorted(root.iterdir()):
            if not env_dir.is_dir():
                continue
            entries = 0
            size = 0
            for path in env_dir.glob("*.json"):
                entries += 1
                size += path.stat().st_size
            environments[env_dir.name] = {"entries": entries, "bytes": size}
            total_entries += entries
            total_bytes += size
    return {
        "root": str(root),
        "environments": environments,
        "entries": total_entries,
        "bytes": total_bytes,
    }


def clear_cache(root: Path) -> int:
    """Delete every record under ``root``; returns the number removed."""
    root = Path(root)
    removed = 0
    if not root.is_dir():
        return 0
    for env_dir in list(root.iterdir()):
        if not env_dir.is_dir():
            continue
        for path in list(env_dir.glob("*.json")) + list(env_dir.glob("*.tmp")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        try:
            env_dir.rmdir()
        except OSError:
            pass
    return removed
