"""Process-pool worker side of :class:`repro.service.PlanService`.

``optimize_many`` ships each worker one pickled *environment* (catalog,
statistics, registry) through the pool initializer; the worker rebuilds an
:class:`Optimizer` per distinct config on demand and keeps it for the life
of the pool, so fanning out N requests costs one environment transfer per
worker, not per request.

Everything here is module-level so it pickles by reference under both the
``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import pickle
from typing import Dict, Optional, Tuple

from repro.logical.operators import LogicalOp
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.engine import Optimizer
from repro.optimizer.result import OptimizationError, OptimizeResult

_ENVIRONMENT = None
_OPTIMIZERS: Dict[OptimizerConfig, Optimizer] = {}


def init_worker(payload: bytes) -> None:
    """Pool initializer: install the pickled (catalog, stats, registry)."""
    global _ENVIRONMENT
    _ENVIRONMENT = pickle.loads(payload)
    _OPTIMIZERS.clear()


def _optimizer_for(config: OptimizerConfig) -> Optimizer:
    optimizer = _OPTIMIZERS.get(config)
    if optimizer is None:
        catalog, stats, registry = _ENVIRONMENT
        optimizer = Optimizer(catalog, stats, registry, config)
        _OPTIMIZERS[config] = optimizer
    return optimizer


def optimize_task(
    task: Tuple[int, LogicalOp, OptimizerConfig],
) -> Tuple[int, Optional[OptimizeResult], Optional[str]]:
    """Optimize one request; failures come back as messages, not raises,
    so one bad tree cannot poison a whole batch."""
    index, tree, config = task
    try:
        result = _optimizer_for(config).optimize(tree)
    except OptimizationError as exc:
        return index, None, str(exc)
    return index, result, None
