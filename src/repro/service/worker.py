"""Process-pool worker side of :class:`repro.service.PlanService`.

``optimize_many`` ships each worker one pickled *environment* (catalog,
statistics, registry) through the pool initializer; the worker rebuilds an
:class:`Optimizer` per distinct config on demand and keeps it for the life
of the pool, so fanning out N requests costs one environment transfer per
worker, not per request.

When the parent service carries a :class:`~repro.obs.metrics.MetricsRegistry`
each task also measures its optimizer counters into a fresh per-task
registry and ships the snapshot back with the result; the parent merges
the deltas so campaign reports see one coherent set of per-rule firing
counts no matter how many processes did the work.

Everything here is module-level so it pickles by reference under both the
``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import pickle
from typing import Dict, Optional, Tuple

from repro.logical.operators import LogicalOp
from repro.obs.metrics import MetricsRegistry
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.engine import Optimizer
from repro.optimizer.result import OptimizationError, OptimizeResult

_ENVIRONMENT = None
_OPTIMIZERS: Dict[OptimizerConfig, Optimizer] = {}
_WANT_METRICS = False

#: Snapshot type shipped back to the parent (``MetricsRegistry.snapshot()``).
MetricDelta = Optional[Dict[str, Dict[str, object]]]


def init_worker(payload: bytes, want_metrics: bool = False) -> None:
    """Pool initializer: install the pickled (catalog, stats, registry)."""
    global _ENVIRONMENT, _WANT_METRICS
    _ENVIRONMENT = pickle.loads(payload)
    _WANT_METRICS = bool(want_metrics)
    _OPTIMIZERS.clear()


def _optimizer_for(config: OptimizerConfig) -> Optimizer:
    optimizer = _OPTIMIZERS.get(config)
    if optimizer is None:
        catalog, stats, registry = _ENVIRONMENT
        optimizer = Optimizer(catalog, stats, registry, config)
        _OPTIMIZERS[config] = optimizer
    return optimizer


def optimize_task(
    task: Tuple[int, LogicalOp, OptimizerConfig],
) -> Tuple[int, Optional[OptimizeResult], Optional[str], MetricDelta]:
    """Optimize one request; failures come back as messages, not raises,
    so one bad tree cannot poison a whole batch."""
    index, tree, config = task
    optimizer = _optimizer_for(config)
    delta: MetricDelta = None
    if _WANT_METRICS:
        # A fresh registry per task: the snapshot shipped back is exactly
        # this task's contribution, so the parent-side merge never double
        # counts however the pool schedules work.
        metrics = MetricsRegistry()
        optimizer.metrics = metrics
    try:
        result = optimizer.optimize(tree)
    except OptimizationError as exc:
        if _WANT_METRICS:
            delta = metrics.snapshot()
            optimizer.metrics = None
        return index, None, str(exc), delta
    if _WANT_METRICS:
        delta = metrics.snapshot()
        optimizer.metrics = None
    return index, result, None, delta
