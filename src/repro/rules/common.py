"""Shared helpers for the rule library."""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.expr.expressions import (
    BoolConnective,
    BoolExpr,
    Column,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    IsNull,
    TRUE,
    conjuncts,
    conjunction,
    referenced_columns,
)
from repro.logical.operators import Project


def split_conjuncts_by_side(
    predicate: Expr,
    left_ids: FrozenSet[int],
    right_ids: FrozenSet[int],
) -> Tuple[List[Expr], List[Expr], List[Expr]]:
    """Partition conjuncts into (left-only, right-only, mixed/other)."""
    left_only: List[Expr] = []
    right_only: List[Expr] = []
    rest: List[Expr] = []
    for conjunct in conjuncts(predicate):
        refs = {column.cid for column in referenced_columns(conjunct)}
        if refs and refs <= left_ids:
            left_only.append(conjunct)
        elif refs and refs <= right_ids:
            right_only.append(conjunct)
        else:
            rest.append(conjunct)
    return left_only, right_only, rest


def references_only(expr: Expr, ids: FrozenSet[int]) -> bool:
    """Does ``expr`` reference only columns whose id is in ``ids``?"""
    return all(column.cid in ids for column in referenced_columns(expr))


def null_safe_equals(left: Column, right: Column) -> Expr:
    """``left = right OR (left IS NULL AND right IS NULL)``.

    SQL set operations (INTERSECT/EXCEPT) and GROUP BY treat NULLs as equal;
    rewriting them into joins therefore needs null-safe equality rather than
    the plain ``=`` (which yields UNKNOWN on NULLs).
    """
    plain = Comparison(ComparisonOp.EQ, ColumnRef(left), ColumnRef(right))
    both_null = BoolExpr(
        BoolConnective.AND,
        (IsNull(ColumnRef(left)), IsNull(ColumnRef(right))),
    )
    return BoolExpr(BoolConnective.OR, (plain, both_null))


def pairwise_null_safe_equals(
    left_columns: Sequence[Column], right_columns: Sequence[Column]
) -> Expr:
    return conjunction(
        null_safe_equals(l, r)
        for l, r in zip(left_columns, right_columns)
    )


def passthrough_project(
    child, columns: Sequence[Column], renames: Optional[dict] = None
) -> Project:
    """A Project forwarding ``columns`` (optionally renaming via ``renames``
    mapping output Column -> source Column)."""
    renames = renames or {}
    outputs = tuple(
        (column, ColumnRef(renames.get(column, column)))
        for column in columns
    )
    return Project(child, outputs)


def predicate_or_true(parts: Sequence[Expr]) -> Expr:
    if not parts:
        return TRUE
    return conjunction(parts)


def maybe_select(child, parts: Sequence[Expr]):
    """Wrap ``child`` in a Select over the conjunction of ``parts`` (or
    return ``child`` unchanged when there is nothing to filter)."""
    from repro.logical.operators import Select

    if not parts:
        return child
    return Select(child, conjunction(parts))
