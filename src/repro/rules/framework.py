"""The transformation-rule framework.

Following the paper (Section 3.1), every rule is a triple
``(Rule Name, Rule Pattern, Substitution)``:

* the **pattern** is a small operator tree whose leaves may be *generic*
  placeholders (the circles in the paper's Figure 3) matching any input;
* during optimization the rule engine checks whether a memo expression
  matches the pattern, and if so invokes the **substitution** to produce new
  equivalent expressions;
* a rule may additionally carry a **precondition** over the bound operator
  tree (e.g. "the grouping columns must include the join columns"), checked
  after the structural match.

A rule is *exercised* for a query exactly when, during that query's
optimization, its pattern matched, its precondition passed, and its
substitution produced at least one expression that was new to the memo.

The same pattern objects are exported through :func:`pattern_to_xml` -- the
paper's "API through which [the server] returns the rule pattern tree for a
rule in a XML format" -- and consumed by the pattern-based query generator.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.logical.operators import JoinKind, LogicalOp, OpKind


@dataclass(frozen=True)
class PatternNode:
    """One node of a rule pattern.

    ``kind is None`` denotes a generic placeholder that matches any operator
    subtree.  For ``JOIN`` and ``APPLY`` patterns, ``join_kinds`` optionally
    restricts the matching join/apply kinds (``None`` means any).
    """

    kind: Optional[OpKind]
    children: Tuple["PatternNode", ...] = ()
    join_kinds: Optional[Tuple[JoinKind, ...]] = None

    def __post_init__(self) -> None:
        if self.kind is None and self.children:
            raise ValueError("generic pattern nodes cannot have children")
        if self.join_kinds is not None and self.kind not in (
            OpKind.JOIN,
            OpKind.APPLY,
        ):
            raise ValueError(
                "join_kinds only applies to JOIN and APPLY patterns"
            )

    @property
    def is_generic(self) -> bool:
        return self.kind is None

    def matches_op(self, op: LogicalOp) -> bool:
        """Does this single node match operator ``op`` (ignoring children)?"""
        if self.kind is None:
            return True
        if op.kind is not self.kind:
            return False
        if self.kind is OpKind.JOIN and self.join_kinds is not None:
            return op.join_kind in self.join_kinds
        if self.kind is OpKind.APPLY and self.join_kinds is not None:
            return op.apply_kind in self.join_kinds
        return True

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def operator_count(self) -> int:
        """Number of non-generic nodes in the pattern."""
        own = 0 if self.is_generic else 1
        return own + sum(child.operator_count() for child in self.children)

    def __str__(self) -> str:
        if self.is_generic:
            return "?"
        label = self.kind.value
        if self.join_kinds is not None:
            label += "[" + "|".join(k.value for k in self.join_kinds) + "]"
        if not self.children:
            return label
        return f"{label}({', '.join(str(child) for child in self.children)})"


#: A generic leaf (matches any operator), the "circle" of the paper's Fig. 3.
ANY = PatternNode(None)


def P(kind: OpKind, *children: PatternNode, join_kinds=None) -> PatternNode:
    """Shorthand constructor for pattern trees."""
    return PatternNode(
        kind,
        tuple(children),
        tuple(join_kinds) if join_kinds is not None else None,
    )


class RuleType:
    EXPLORATION = "exploration"
    IMPLEMENTATION = "implementation"


class Rule:
    """Base class for transformation rules.

    Subclasses define :attr:`name`, :attr:`pattern` and override
    :meth:`substitute`; :meth:`precondition` defaults to always-true.
    """

    name: str = ""
    pattern: PatternNode = ANY
    rule_type: str = RuleType.EXPLORATION

    #: Free-form note describing the semantic condition the rule relies on;
    #: surfaced in documentation and the registry listing.
    condition_note: str = ""

    #: Argument-level guidance for the pattern-based query generator -- the
    #: paper's "additional preconditions on the input pattern" (Section 3.1:
    #: "if such constraints are well abstracted in the database engine, they
    #: can potentially be added as additional preconditions on the input
    #: pattern and leveraged by the query generation module").  Keys/values
    #: are interpreted by :mod:`repro.testing.pattern_gen`; structural
    #: matching never depends on them.
    generation_hints: dict = {}

    def precondition(self, binding: LogicalOp, ctx: "RuleContext") -> bool:
        """Semantic check on a structurally matched ``binding``."""
        return True

    def substitute(
        self, binding: LogicalOp, ctx: "RuleContext"
    ) -> Iterable[object]:
        """Produce substitute expressions for a matched ``binding``.

        Exploration rules yield logical operators; implementation rules yield
        physical operators.  Children of yielded trees may be
        :class:`~repro.logical.operators.GroupRef` leaves taken from the
        binding, existing bound subtrees, or newly built operators.
        """
        raise NotImplementedError

    def substitutions(
        self, binding: LogicalOp, ctx: "RuleContext"
    ) -> list:
        """Materialized substitution outputs for ``binding``.

        Analysis hook: checks the precondition and drains the substitution
        generator, so static passes can enumerate a rule's outputs without
        replicating precondition handling.  Returns ``[]`` when the
        precondition rejects the binding.  Exceptions propagate -- callers
        that treat crashes as findings catch them (see SV201).
        """
        if not self.precondition(binding, ctx):
            return []
        return list(self.substitute(binding, ctx))

    @property
    def is_exploration(self) -> bool:
        return self.rule_type == RuleType.EXPLORATION

    def __repr__(self) -> str:
        return f"<Rule {self.name}>"


class RuleContext:
    """Services available to preconditions and substitutions.

    Provides logical properties and cardinality estimates for any node of a
    binding (operator or group reference), plus the catalog.  The concrete
    implementation lives in the optimizer; the abstract interface keeps the
    rule library free of memo internals.
    """

    def props(self, node):
        """Logical properties (:class:`LogicalProps`) of ``node``."""
        raise NotImplementedError

    def estimate(self, node):
        """Cardinality estimate (:class:`RelEstimate`) of ``node``."""
        raise NotImplementedError

    @property
    def catalog(self):
        raise NotImplementedError

    # Convenience accessors used heavily by rule preconditions.

    def columns(self, node) -> Tuple:
        return self.props(node).columns

    def column_ids(self, node) -> frozenset:
        return self.props(node).column_ids


def match_structure(op: LogicalOp, pattern: PatternNode) -> bool:
    """Shallow structural match of a *tree* against a pattern.

    Used by tests and the query generators (the optimizer's own matching
    works against memo bindings, see :mod:`repro.optimizer.binding`).
    """
    if not pattern.matches_op(op):
        return False
    if pattern.is_generic:
        return True
    if len(pattern.children) != len(op.children):
        return False
    return all(
        isinstance(child, LogicalOp) and match_structure(child, sub)
        for child, sub in zip(op.children, pattern.children)
    )


def tree_contains_pattern(op: LogicalOp, pattern: PatternNode) -> bool:
    """Does any subtree of ``op`` match ``pattern``?"""
    return any(match_structure(node, pattern) for node in op.walk())


def walk_pattern(pattern: PatternNode, path: str = "root"):
    """Yield ``(node, path)`` for every node of a pattern, pre-order.

    Paths are dotted child indices (``root``, ``root.0``, ``root.0.1``) --
    the coordinate system the analysis passes use to anchor diagnostics
    and to map implementation variables onto pattern positions.
    """
    yield pattern, path
    for index, child in enumerate(pattern.children):
        yield from walk_pattern(child, f"{path}.{index}")


# ------------------------------------------------------------------ XML export


def pattern_to_xml(pattern: PatternNode) -> str:
    """Serialize a rule pattern as XML.

    This reproduces the paper's optimizer extension: "We have extended the
    database server with an API through which it returns the rule pattern
    tree for a rule in a XML format."
    """
    return ET.tostring(_pattern_element(pattern), encoding="unicode")


def _pattern_element(pattern: PatternNode) -> ET.Element:
    if pattern.is_generic:
        return ET.Element("Any")
    element = ET.Element("Operator", {"kind": pattern.kind.value})
    if pattern.join_kinds is not None:
        element.set(
            "joinKinds", ",".join(kind.value for kind in pattern.join_kinds)
        )
    for child in pattern.children:
        element.append(_pattern_element(child))
    return element


def pattern_from_xml(text: str) -> PatternNode:
    """Parse a pattern previously serialized by :func:`pattern_to_xml`."""
    return _pattern_from_element(ET.fromstring(text))


def _pattern_from_element(element: ET.Element) -> PatternNode:
    if element.tag == "Any":
        return ANY
    if element.tag != "Operator":
        raise ValueError(f"unexpected element {element.tag!r}")
    kind = OpKind(element.get("kind"))
    join_kinds = None
    raw = element.get("joinKinds")
    if raw:
        join_kinds = tuple(JoinKind(value) for value in raw.split(","))
    children = tuple(_pattern_from_element(child) for child in element)
    return PatternNode(kind, children, join_kinds)
