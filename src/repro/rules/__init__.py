"""The transformation-rule framework, rule library and registry."""

from repro.rules.framework import (
    ANY,
    P,
    PatternNode,
    Rule,
    RuleContext,
    RuleType,
    match_structure,
    pattern_from_xml,
    pattern_to_xml,
    tree_contains_pattern,
)
from repro.rules.registry import (
    DEFAULT_EXPLORATION_RULES,
    DEFAULT_IMPLEMENTATION_RULES,
    RuleRegistry,
    default_registry,
)

__all__ = [
    "ANY",
    "DEFAULT_EXPLORATION_RULES",
    "DEFAULT_IMPLEMENTATION_RULES",
    "P",
    "PatternNode",
    "Rule",
    "RuleContext",
    "RuleRegistry",
    "RuleType",
    "default_registry",
    "match_structure",
    "pattern_from_xml",
    "pattern_to_xml",
    "tree_contains_pattern",
]
