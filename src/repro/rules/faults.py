"""Deliberately buggy rule variants for fault injection.

Testing frameworks must themselves be tested: each class here is a
plausible *incorrect* implementation of one of the library's transformation
rules (a missing precondition or a wrong combining function -- the kinds of
bugs the paper's correctness methodology is designed to catch).  Swap one
into a registry with ``registry.with_replaced_rule(BuggyX())`` and the
correctness harness should flag result mismatches.
"""

from __future__ import annotations

from typing import Iterable

from repro.expr.aggregates import AggregateCall, AggregateFunction
from repro.expr.expressions import ColumnRef
from repro.logical.operators import GbAgg, Join, JoinKind, LogicalOp, Select
from repro.rules.exploration.distinct_rules import DistinctRemoveOnKey
from repro.rules.exploration.groupby_rules import (
    GbAggEagerBelowJoin,
    _fresh_agg_column,
)
from repro.rules.exploration.outerjoin_rules import LojToJoinOnNullReject
from repro.rules.exploration.select_rules import SelectPushBelowJoinRight
from repro.expr.expressions import conjunction
from repro.logical.operators import OpKind
from repro.rules.common import maybe_select, split_conjuncts_by_side
from repro.rules.framework import ANY, P, RuleContext


class BuggyLojToJoin(LojToJoinOnNullReject):
    """LOJ -> inner join **without** checking that the filter above is
    null-rejecting.  Incorrect: non-rejecting filters (e.g. ``IS NULL`` on a
    right-side column) keep NULL-extended rows that the inner join drops.
    """

    def precondition(self, binding: Select, ctx: RuleContext) -> bool:
        return True  # the missing null-rejection check is the bug


class BuggySelectPushBelowJoinRight(SelectPushBelowJoinRight):
    """Pushes right-side conjuncts below the right input of a **left outer**
    join as well.  Incorrect: filtering the right side before an outer join
    turns filtered matches into NULL-extended rows instead of removing them.
    """

    pattern = P(
        OpKind.SELECT,
        P(
            OpKind.JOIN,
            ANY,
            ANY,
            join_kinds=(JoinKind.INNER, JoinKind.LEFT_OUTER),
        ),
    )

    def substitute(self, binding: Select, ctx: RuleContext) -> Iterable[LogicalOp]:
        join: Join = binding.child
        left_ids = ctx.column_ids(join.left)
        right_ids = ctx.column_ids(join.right)
        left_only, right_only, rest = split_conjuncts_by_side(
            binding.predicate, left_ids, right_ids
        )
        new_right = Select(join.right, conjunction(right_only))
        new_join = join.with_children((join.left, new_right))
        yield maybe_select(new_join, left_only + rest)


class BuggyDistinctRemove(DistinctRemoveOnKey):
    """Removes Distinct **without** the unique-key precondition.
    Incorrect whenever the input actually contains duplicates."""

    def precondition(self, binding, ctx: RuleContext) -> bool:
        return True  # the missing key check is the bug


class BuggyEagerAggregation(GbAggEagerBelowJoin):
    """Eager aggregation whose global phase re-applies the **original**
    aggregate function instead of the combining function.  Incorrect for
    COUNT (counts partials instead of summing them)."""

    def substitute(self, binding: GbAgg, ctx: RuleContext) -> Iterable[LogicalOp]:
        join: Join = binding.child
        left_columns = ctx.columns(join.left)
        left_ids = frozenset(column.cid for column in left_columns)
        left_by_id = {column.cid: column for column in left_columns}

        local_group_ids = {
            column.cid
            for column in binding.group_by
            if column.cid in left_ids
        }
        from repro.expr.expressions import referenced_columns

        for column in referenced_columns(join.predicate):
            if column.cid in left_ids:
                local_group_ids.add(column.cid)
        local_group = tuple(
            left_by_id[cid] for cid in sorted(local_group_ids)
        )

        local_aggs = []
        global_aggs = []
        for index, (out_column, call) in enumerate(binding.aggregates):
            partial_col = _fresh_agg_column(call, f"partial_{index}")
            local_aggs.append((partial_col, call))
            # BUG: should be call.function.combiner (SUM for COUNT/COUNT(*));
            # re-applying COUNT counts partial rows instead of summing them.
            function = call.function
            if function is AggregateFunction.COUNT_STAR:
                function = AggregateFunction.COUNT
            wrong = AggregateCall(function, ColumnRef(partial_col))
            global_aggs.append((out_column, wrong))

        local = GbAgg(
            join.left, local_group, tuple(local_aggs), phase="local"
        )
        new_join = Join(JoinKind.INNER, local, join.right, join.predicate)
        yield GbAgg(
            new_join, binding.group_by, tuple(global_aggs), phase="global"
        )


#: All injectable faults, keyed by the rule they silently corrupt.
ALL_FAULTS = {
    "LojToJoinOnNullReject": BuggyLojToJoin,
    "SelectPushBelowJoinRight": BuggySelectPushBelowJoinRight,
    "DistinctRemoveOnKey": BuggyDistinctRemove,
    "GbAggEagerBelowJoin": BuggyEagerAggregation,
}
