"""The rule registry: the optimizer's full rule set.

The default registry carries 40 logical exploration rules -- the paper's
experiments use "a set of around 30 logical transformation rules ... that
cover the most commonly used operators including selections, joins, outer
joins, semi-joins, group-by etc." -- plus the implementation rules that make
plans executable.

The registry also exposes the rule-pattern export API (Section 3.1):
``pattern_xml(name)`` returns the XML form of a rule's pattern, which is what
the pattern-based query generator consumes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.rules.exploration.distinct_rules import (
    DistinctRemoveOnKey,
    DistinctToGbAgg,
    SemiJoinToJoinOnKey,
)
from repro.rules.exploration.groupby_rules import (
    GbAggEagerBelowJoin,
    GbAggPullAboveJoin,
    GbAggRemoveOnKey,
    GbAggSplitGlobalLocal,
)
from repro.rules.exploration.join_rules import (
    CrossToInnerJoin,
    JoinCommutativity,
    JoinLeftAssociativity,
    JoinPredicateToSelect,
    JoinRightAssociativity,
)
from repro.rules.exploration.misc_rules import (
    AntiJoinToLojFilter,
    AvgToSumDivCount,
)
from repro.rules.exploration.outerjoin_rules import (
    JoinLojAssociativity,
    LojPushSelectLeft,
    LojToJoinOnNullReject,
)
from repro.rules.exploration.project_rules import (
    ProjectMerge,
    RemoveTrivialProject,
)
from repro.rules.exploration.select_rules import (
    SelectCommute,
    SelectIntoJoinPredicate,
    SelectMerge,
    SelectPushBelowGbAgg,
    SelectPushBelowJoinLeft,
    SelectPushBelowJoinRight,
    SelectPushBelowProject,
    SelectPushBelowUnion,
    SelectPushBelowUnionAll,
    SelectSplit,
    SelectTrueRemoval,
)
from repro.rules.exploration.subquery_rules import (
    ApplyDecorrelateSelect,
    ApplyToAntiJoin,
    ApplyToSemiJoin,
    SelectPushIntoApplyLeft,
    SemiJoinToDistinctInnerJoin,
)
from repro.rules.exploration.setop_rules import (
    ExceptToAntiJoin,
    IntersectToSemiJoin,
    UnionAllAssociativity,
    UnionAllCommutativity,
    UnionToDistinctUnionAll,
)
from repro.rules.framework import Rule, pattern_to_xml
from repro.rules.implementation.impl_rules import (
    ApplyToNestedApply,
    DistinctToHashDistinct,
    ExceptToHashExcept,
    GbAggToHashAggregate,
    GbAggToStreamAggregate,
    GetToTableScan,
    IntersectToHashIntersect,
    JoinToHashJoin,
    JoinToMergeJoin,
    JoinToNestedLoops,
    LimitToTop,
    ProjectToComputeScalar,
    SelectToFilter,
    SortToPhysicalSort,
    UnionAllToConcat,
    UnionToHashUnion,
)

#: Default exploration rules, in a stable order.  Benchmarks that sweep the
#: number of rules ``n`` take prefixes of this list, so the order
#: interleaves rule families (mirroring a realistic mixed rule set) rather
#: than clustering them.
DEFAULT_EXPLORATION_RULES = (
    JoinCommutativity,
    SelectPushBelowJoinLeft,
    ProjectMerge,
    SelectMerge,
    JoinLeftAssociativity,
    SelectPushBelowJoinRight,
    GbAggPullAboveJoin,
    UnionAllCommutativity,
    SelectIntoJoinPredicate,
    DistinctToGbAgg,
    LojToJoinOnNullReject,
    SelectPushBelowProject,
    CrossToInnerJoin,
    GbAggEagerBelowJoin,
    SelectPushBelowUnionAll,
    JoinRightAssociativity,
    SelectPushBelowGbAgg,
    UnionToDistinctUnionAll,
    JoinLojAssociativity,
    SelectSplit,
    IntersectToSemiJoin,
    DistinctRemoveOnKey,
    SelectCommute,
    GbAggRemoveOnKey,
    ExceptToAntiJoin,
    LojPushSelectLeft,
    UnionAllAssociativity,
    SemiJoinToJoinOnKey,
    JoinPredicateToSelect,
    GbAggSplitGlobalLocal,
    SelectPushBelowUnion,
    RemoveTrivialProject,
    SelectTrueRemoval,
    # Appended after the first release so that prefix-based rule sweeps in
    # the benchmarks remain comparable across versions.
    AntiJoinToLojFilter,
    AvgToSumDivCount,
    # Subquery unnesting (appended for the same prefix-stability reason).
    ApplyToSemiJoin,
    ApplyToAntiJoin,
    ApplyDecorrelateSelect,
    SelectPushIntoApplyLeft,
    SemiJoinToDistinctInnerJoin,
)

DEFAULT_IMPLEMENTATION_RULES = (
    GetToTableScan,
    SelectToFilter,
    ProjectToComputeScalar,
    JoinToNestedLoops,
    JoinToHashJoin,
    JoinToMergeJoin,
    ApplyToNestedApply,
    GbAggToHashAggregate,
    GbAggToStreamAggregate,
    UnionAllToConcat,
    UnionToHashUnion,
    IntersectToHashIntersect,
    ExceptToHashExcept,
    DistinctToHashDistinct,
    SortToPhysicalSort,
    LimitToTop,
)


class RuleRegistry:
    """An ordered collection of rule instances with name-based lookup."""

    def __init__(
        self,
        exploration: Optional[Sequence[Rule]] = None,
        implementation: Optional[Sequence[Rule]] = None,
    ) -> None:
        if exploration is None:
            exploration = [cls() for cls in DEFAULT_EXPLORATION_RULES]
        if implementation is None:
            implementation = [cls() for cls in DEFAULT_IMPLEMENTATION_RULES]
        self.exploration_rules: List[Rule] = list(exploration)
        self.implementation_rules: List[Rule] = list(implementation)
        self._by_name: Dict[str, Rule] = {}
        for rule in self.exploration_rules + self.implementation_rules:
            if not rule.name:
                raise ValueError(f"rule {rule!r} has no name")
            if rule.name in self._by_name:
                raise ValueError(f"duplicate rule name {rule.name!r}")
            self._by_name[rule.name] = rule

    # ------------------------------------------------------------------ lookup

    def rule(self, name: str) -> Rule:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no rule named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def exploration_rule_names(self) -> List[str]:
        return [rule.name for rule in self.exploration_rules]

    @property
    def all_rules(self) -> List[Rule]:
        return self.exploration_rules + self.implementation_rules

    # --------------------------------------------------------------- pattern API

    def pattern_xml(self, name: str) -> str:
        """Rule-pattern export API: the pattern of rule ``name`` as XML."""
        return pattern_to_xml(self.rule(name).pattern)

    # ---------------------------------------------------------------- variants

    def with_exploration_subset(self, names: Iterable[str]) -> "RuleRegistry":
        """A registry restricted to the named exploration rules (all
        implementation rules retained)."""
        chosen = [self.rule(name) for name in names]
        for rule in chosen:
            if not rule.is_exploration:
                raise ValueError(f"{rule.name} is not an exploration rule")
        return RuleRegistry(chosen, list(self.implementation_rules))

    def with_replaced_rule(self, replacement: Rule) -> "RuleRegistry":
        """A registry with the same-named rule swapped for ``replacement``
        (used by fault injection to plant a buggy rule variant)."""
        if replacement.name not in self._by_name:
            raise KeyError(f"no rule named {replacement.name!r} to replace")
        exploration = [
            replacement if rule.name == replacement.name else rule
            for rule in self.exploration_rules
        ]
        implementation = [
            replacement if rule.name == replacement.name else rule
            for rule in self.implementation_rules
        ]
        return RuleRegistry(exploration, implementation)


def default_registry() -> RuleRegistry:
    """The standard rule set (40 exploration + 16 implementation rules)."""
    return RuleRegistry()
