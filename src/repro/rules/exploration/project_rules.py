"""Exploration rules over projections."""

from __future__ import annotations

from typing import Iterable

from repro.expr.expressions import ColumnRef, substitute_columns
from repro.logical.operators import LogicalOp, OpKind, Project
from repro.rules.framework import ANY, P, Rule, RuleContext


class ProjectMerge(Rule):
    """``Project(o1, Project(o2, X)) -> Project(o1 o o2, X)`` --
    compose the outer outputs over the inner definitions."""

    name = "ProjectMerge"
    pattern = P(OpKind.PROJECT, P(OpKind.PROJECT, ANY))

    def substitute(self, binding: Project, ctx: RuleContext) -> Iterable[LogicalOp]:
        inner: Project = binding.child
        mapping = {column: expr for column, expr in inner.outputs}
        outputs = tuple(
            (column, substitute_columns(expr, mapping))
            for column, expr in binding.outputs
        )
        yield Project(inner.child, outputs)


class RemoveTrivialProject(Rule):
    """Drop a projection that passes through exactly its input's columns.

    The substitution yields the child group itself (a group alias); the
    optimizer records the equivalence by absorbing the child group's
    expressions.
    """

    name = "RemoveTrivialProject"
    pattern = P(OpKind.PROJECT, ANY)
    generation_hints = {"project": "passthrough_all"}
    condition_note = "all outputs are pass-through and cover the input"

    def precondition(self, binding: Project, ctx: RuleContext) -> bool:
        passthrough = all(
            isinstance(expr, ColumnRef) and expr.column == column
            for column, expr in binding.outputs
        )
        if not passthrough:
            return False
        child_ids = ctx.column_ids(binding.child)
        output_ids = frozenset(
            column.cid for column in binding.output_columns
        )
        return output_ids == child_ids

    def substitute(self, binding: Project, ctx: RuleContext) -> Iterable[object]:
        yield binding.child
