"""Exploration rules over Group-By/Aggregate.

These are the schema/property-sensitive rules the paper singles out:
``GbAggPullAboveJoin`` is the Figure 3 example ("pull up a Group-By operator
above a join") and fires only under functional-dependency conditions -- the
join columns must be grouping columns and the other side must contribute at
most one match (a declared unique key); ``GbAggEagerBelowJoin`` is the
classic eager aggregation of [3] (Chaudhuri's overview, citing
Chaudhuri/Shim and Yan/Larson).

To keep exploration finite, rules that manufacture fresh aggregate stages
only apply to ``phase == "single"`` aggregates and mark their products as
``local``/``global``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.catalog.schema import DataType
from repro.expr.aggregates import AggregateCall, AggregateFunction
from repro.expr.expressions import (
    Column,
    ColumnRef,
    Expr,
    Literal,
    expression_type,
    referenced_columns,
)
from repro.logical.operators import GbAgg, Join, JoinKind, LogicalOp, OpKind, Project
from repro.logical.properties import is_pure_equijoin
from repro.rules.framework import ANY, P, Rule, RuleContext


def _fresh_agg_column(call: AggregateCall, name: str) -> Column:
    return Column(
        name=name,
        data_type=call.result_type(),
        nullable=call.result_nullable(),
    )


class GbAggPullAboveJoin(Rule):
    """``GbAgg(X) JOIN Y -> GbAgg(X JOIN Y)`` -- lazy aggregation.

    Preconditions (the functional dependencies the paper mentions):

    * pure equi-join whose left join columns are all grouping columns and
      whose right join columns form a unique key of Y (so each group matches
      at most one Y row -- aggregates see exactly the same input rows);
    * the join predicate references no aggregate output.
    """

    name = "GbAggPullAboveJoin"
    pattern = P(
        OpKind.JOIN,
        P(OpKind.GB_AGG, ANY),
        ANY,
        join_kinds=(JoinKind.INNER,),
    )
    generation_hints = {"join_predicate": "fk_pk", "group_by": "foreign_key"}
    condition_note = (
        "equi-join on grouping columns; right side unique on its join keys"
    )

    def precondition(self, binding: Join, ctx: RuleContext) -> bool:
        agg: GbAgg = binding.left
        if agg.phase != "single":
            return False
        left_ids = frozenset(c.cid for c in agg.output_columns)
        right_props = ctx.props(binding.right)
        right_ids = right_props.column_ids
        if not is_pure_equijoin(binding.predicate, left_ids, right_ids):
            return False
        group_ids = frozenset(column.cid for column in agg.group_by)
        agg_out_ids = frozenset(column.cid for column, _ in agg.aggregates)
        left_keys: List[int] = []
        right_keys: List[int] = []
        for column in referenced_columns(binding.predicate):
            if column.cid in right_ids:
                right_keys.append(column.cid)
            elif column.cid in group_ids:
                left_keys.append(column.cid)
            elif column.cid in agg_out_ids:
                return False  # predicate touches an aggregate result
        if not right_keys:
            return False
        return right_props.has_key(frozenset(right_keys))

    def substitute(self, binding: Join, ctx: RuleContext) -> Iterable[LogicalOp]:
        agg: GbAgg = binding.left
        right_columns = ctx.columns(binding.right)
        new_join = Join(
            JoinKind.INNER, agg.child, binding.right, binding.predicate
        )
        yield GbAgg(
            new_join,
            agg.group_by + tuple(right_columns),
            agg.aggregates,
            phase="single",
        )


class GbAggEagerBelowJoin(Rule):
    """``GbAgg(G, aggs, X JOIN Y) -> GbAgg(G, combine, (GbAgg_local(X) JOIN Y))``
    -- eager (partial) aggregation below the join.

    Requires every aggregate argument to come from the left input and every
    aggregate to be decomposable.  The local aggregate groups by the left
    part of ``G`` plus the left columns the join predicate touches, so rows
    merged by the local phase are indistinguishable to the join; the global
    phase combines partials (SUM of partial SUMs/COUNTs, MIN of MINs, ...).
    """

    name = "GbAggEagerBelowJoin"
    pattern = P(
        OpKind.GB_AGG, P(OpKind.JOIN, ANY, ANY, join_kinds=(JoinKind.INNER,))
    )
    generation_hints = {"agg_args": "left_only"}
    condition_note = (
        "aggregate args from the left input only; all aggregates decomposable"
    )

    def precondition(self, binding: GbAgg, ctx: RuleContext) -> bool:
        if binding.phase != "single":
            return False
        join: Join = binding.child
        left_ids = ctx.column_ids(join.left)
        if not binding.aggregates:
            return False
        for _, call in binding.aggregates:
            if not call.function.is_decomposable:
                return False
            if call.argument is not None:
                refs = referenced_columns(call.argument)
                if not all(column.cid in left_ids for column in refs):
                    return False
        return True

    def substitute(self, binding: GbAgg, ctx: RuleContext) -> Iterable[LogicalOp]:
        join: Join = binding.child
        left_columns = ctx.columns(join.left)
        left_ids = frozenset(column.cid for column in left_columns)
        left_by_id = {column.cid: column for column in left_columns}

        local_group_ids = {
            column.cid for column in binding.group_by if column.cid in left_ids
        }
        for column in referenced_columns(join.predicate):
            if column.cid in left_ids:
                local_group_ids.add(column.cid)
        local_group = tuple(
            left_by_id[cid] for cid in sorted(local_group_ids)
        )

        local_aggs: List[Tuple[Column, AggregateCall]] = []
        global_aggs: List[Tuple[Column, AggregateCall]] = []
        for index, (out_column, call) in enumerate(binding.aggregates):
            partial_col = _fresh_agg_column(call, f"partial_{index}")
            local_aggs.append((partial_col, call))
            combiner = AggregateCall(
                call.function.combiner, ColumnRef(partial_col)
            )
            global_aggs.append((out_column, combiner))

        local = GbAgg(
            join.left, local_group, tuple(local_aggs), phase="local"
        )
        new_join = Join(JoinKind.INNER, local, join.right, join.predicate)
        yield GbAgg(
            new_join, binding.group_by, tuple(global_aggs), phase="global"
        )


class GbAggRemoveOnKey(Rule):
    """``GbAgg(G, aggs, X) -> Project`` when G contains a key of X.

    Every group has exactly one row, so aggregates collapse to scalar
    expressions: ``SUM/MIN/MAX(e) -> e``, ``COUNT(*) -> 1``, ``COUNT(e) -> 1``
    when ``e`` is known non-null.  Aggregates that cannot be expressed this
    way (e.g. COUNT of a nullable expression, which would need CASE) veto
    the rule.
    """

    name = "GbAggRemoveOnKey"
    pattern = P(OpKind.GB_AGG, ANY)
    generation_hints = {"group_by": "include_key", "agg_args": "count_star"}
    condition_note = "grouping columns contain a key of the input"

    def precondition(self, binding: GbAgg, ctx: RuleContext) -> bool:
        if binding.phase != "single":
            return False
        if not binding.group_by:
            return False
        props = ctx.props(binding.child)
        group_ids = frozenset(column.cid for column in binding.group_by)
        if not props.has_key(group_ids):
            return False
        return all(
            self._scalar_form(call, ctx, binding) is not None
            for _, call in binding.aggregates
        )

    @staticmethod
    def _scalar_form(
        call: AggregateCall, ctx: RuleContext, binding: GbAgg
    ) -> Optional[Expr]:
        function = call.function
        if function is AggregateFunction.COUNT_STAR:
            return Literal(1, DataType.INT)
        assert call.argument is not None
        if function in (
            AggregateFunction.SUM,
            AggregateFunction.MIN,
            AggregateFunction.MAX,
        ):
            return call.argument
        if function is AggregateFunction.AVG:
            if expression_type(call.argument) is DataType.FLOAT:
                return call.argument
            return None
        # COUNT(e): 1 when e is provably non-null, inexpressible otherwise.
        props = ctx.props(binding.child)
        refs = referenced_columns(call.argument)
        if refs and all(column in props.non_null for column in refs):
            if isinstance(call.argument, ColumnRef):
                return Literal(1, DataType.INT)
        return None

    def substitute(self, binding: GbAgg, ctx: RuleContext) -> Iterable[LogicalOp]:
        outputs = [
            (column, ColumnRef(column)) for column in binding.group_by
        ]
        for column, call in binding.aggregates:
            scalar = self._scalar_form(call, ctx, binding)
            assert scalar is not None
            outputs.append((column, scalar))
        yield Project(binding.child, tuple(outputs))


class GbAggSplitGlobalLocal(Rule):
    """``GbAgg(G, aggs, X) -> GbAgg_global(G, combine, GbAgg_local(G, aggs, X))``
    -- split into local/global phases (all aggregates must be decomposable)."""

    name = "GbAggSplitGlobalLocal"
    pattern = P(OpKind.GB_AGG, ANY)
    condition_note = "all aggregates decomposable; at least one group column"

    def precondition(self, binding: GbAgg, ctx: RuleContext) -> bool:
        if binding.phase != "single":
            return False
        if not binding.group_by or not binding.aggregates:
            return False
        return all(
            call.function.is_decomposable for _, call in binding.aggregates
        )

    def substitute(self, binding: GbAgg, ctx: RuleContext) -> Iterable[LogicalOp]:
        local_aggs: List[Tuple[Column, AggregateCall]] = []
        global_aggs: List[Tuple[Column, AggregateCall]] = []
        for index, (out_column, call) in enumerate(binding.aggregates):
            partial_col = _fresh_agg_column(call, f"partial_{index}")
            local_aggs.append((partial_col, call))
            global_aggs.append(
                (
                    out_column,
                    AggregateCall(
                        call.function.combiner, ColumnRef(partial_col)
                    ),
                )
            )
        local = GbAgg(
            binding.child, binding.group_by, tuple(local_aggs), phase="local"
        )
        yield GbAgg(
            local, binding.group_by, tuple(global_aggs), phase="global"
        )
