"""Exploration rules that move selections (filters) around."""

from __future__ import annotations

from typing import Iterable

from repro.expr.expressions import (
    TRUE,
    conjunction,
    conjuncts,
    substitute_columns,
)
from repro.logical.operators import (
    GbAgg,
    Join,
    JoinKind,
    LogicalOp,
    OpKind,
    Project,
    Select,
)
from repro.rules.common import (
    maybe_select,
    references_only,
    split_conjuncts_by_side,
)
from repro.rules.framework import ANY, P, Rule, RuleContext


class SelectMerge(Rule):
    """``Select(p1, Select(p2, X)) -> Select(p1 AND p2, X)``."""

    name = "SelectMerge"
    pattern = P(OpKind.SELECT, P(OpKind.SELECT, ANY))

    def substitute(self, binding: Select, ctx: RuleContext) -> Iterable[LogicalOp]:
        inner: Select = binding.child
        yield Select(
            inner.child, conjunction([binding.predicate, inner.predicate])
        )


class SelectSplit(Rule):
    """``Select(c1 AND rest, X) -> Select(c1, Select(rest, X))``."""

    name = "SelectSplit"
    pattern = P(OpKind.SELECT, ANY)
    condition_note = "predicate has at least two conjuncts"

    def precondition(self, binding: Select, ctx: RuleContext) -> bool:
        return len(conjuncts(binding.predicate)) >= 2

    def substitute(self, binding: Select, ctx: RuleContext) -> Iterable[LogicalOp]:
        first, *rest = conjuncts(binding.predicate)
        yield Select(Select(binding.child, conjunction(rest)), first)


class SelectCommute(Rule):
    """``Select(p1, Select(p2, X)) -> Select(p2, Select(p1, X))``."""

    name = "SelectCommute"
    pattern = P(OpKind.SELECT, P(OpKind.SELECT, ANY))

    def substitute(self, binding: Select, ctx: RuleContext) -> Iterable[LogicalOp]:
        inner: Select = binding.child
        yield Select(
            Select(inner.child, binding.predicate), inner.predicate
        )


class SelectPushBelowJoinLeft(Rule):
    """Push left-side-only conjuncts below a join's left input.

    Valid for inner joins and for semi/anti joins (whose output is the left
    input): filtering left rows before or after the join is equivalent when
    the predicate sees only left columns.
    """

    name = "SelectPushBelowJoinLeft"
    pattern = P(
        OpKind.SELECT,
        P(
            OpKind.JOIN,
            ANY,
            ANY,
            join_kinds=(JoinKind.INNER, JoinKind.SEMI, JoinKind.ANTI),
        ),
    )
    generation_hints = {"select_predicate": "left_side"}
    condition_note = "some conjunct references only the left input"

    def precondition(self, binding: Select, ctx: RuleContext) -> bool:
        join: Join = binding.child
        left_ids = ctx.column_ids(join.left)
        right_ids = ctx.column_ids(join.right)
        left_only, _, _ = split_conjuncts_by_side(
            binding.predicate, left_ids, right_ids
        )
        return bool(left_only)

    def substitute(self, binding: Select, ctx: RuleContext) -> Iterable[LogicalOp]:
        join: Join = binding.child
        left_ids = ctx.column_ids(join.left)
        right_ids = ctx.column_ids(join.right)
        left_only, right_only, rest = split_conjuncts_by_side(
            binding.predicate, left_ids, right_ids
        )
        new_left = Select(join.left, conjunction(left_only))
        new_join = join.with_children((new_left, join.right))
        yield maybe_select(new_join, right_only + rest)


class SelectPushBelowJoinRight(Rule):
    """Push right-side-only conjuncts below an inner join's right input."""

    name = "SelectPushBelowJoinRight"
    pattern = P(
        OpKind.SELECT, P(OpKind.JOIN, ANY, ANY, join_kinds=(JoinKind.INNER,))
    )
    generation_hints = {"select_predicate": "right_side"}
    condition_note = "some conjunct references only the right input"

    def precondition(self, binding: Select, ctx: RuleContext) -> bool:
        join: Join = binding.child
        left_ids = ctx.column_ids(join.left)
        right_ids = ctx.column_ids(join.right)
        _, right_only, _ = split_conjuncts_by_side(
            binding.predicate, left_ids, right_ids
        )
        return bool(right_only)

    def substitute(self, binding: Select, ctx: RuleContext) -> Iterable[LogicalOp]:
        join: Join = binding.child
        left_ids = ctx.column_ids(join.left)
        right_ids = ctx.column_ids(join.right)
        left_only, right_only, rest = split_conjuncts_by_side(
            binding.predicate, left_ids, right_ids
        )
        new_right = Select(join.right, conjunction(right_only))
        new_join = join.with_children((join.left, new_right))
        yield maybe_select(new_join, left_only + rest)


class SelectIntoJoinPredicate(Rule):
    """``Select(p, A JOIN[q] B) -> A JOIN[p AND q] B`` (inner joins)."""

    name = "SelectIntoJoinPredicate"
    pattern = P(
        OpKind.SELECT, P(OpKind.JOIN, ANY, ANY, join_kinds=(JoinKind.INNER,))
    )

    def substitute(self, binding: Select, ctx: RuleContext) -> Iterable[LogicalOp]:
        join: Join = binding.child
        yield Join(
            JoinKind.INNER,
            join.left,
            join.right,
            conjunction([binding.predicate, join.predicate]),
        )


class SelectPushBelowProject(Rule):
    """``Select(p, Project(outs, X)) -> Project(outs, Select(p', X))``
    where ``p'`` inlines the projection's definitions into ``p``."""

    name = "SelectPushBelowProject"
    pattern = P(OpKind.SELECT, P(OpKind.PROJECT, ANY))

    def substitute(self, binding: Select, ctx: RuleContext) -> Iterable[LogicalOp]:
        project: Project = binding.child
        mapping = {column: expr for column, expr in project.outputs}
        pushed = substitute_columns(binding.predicate, mapping)
        yield Project(Select(project.child, pushed), project.outputs)


class SelectPushBelowGbAgg(Rule):
    """Push a predicate over grouping columns below the Group-By.

    Valid because the predicate's value is constant within each group
    (it references only grouping columns), so filtering groups after
    aggregation equals filtering their input rows before.
    """

    name = "SelectPushBelowGbAgg"
    pattern = P(OpKind.SELECT, P(OpKind.GB_AGG, ANY))
    generation_hints = {"select_predicate": "group_columns"}
    condition_note = "predicate references only grouping columns"

    def precondition(self, binding: Select, ctx: RuleContext) -> bool:
        agg: GbAgg = binding.child
        group_ids = frozenset(column.cid for column in agg.group_by)
        return bool(group_ids) and references_only(
            binding.predicate, group_ids
        )

    def substitute(self, binding: Select, ctx: RuleContext) -> Iterable[LogicalOp]:
        agg: GbAgg = binding.child
        yield agg.with_children((Select(agg.child, binding.predicate),))


class _SelectPushBelowUnionBase(Rule):
    """Shared implementation for pushing a filter below UNION [ALL]."""

    def substitute(self, binding: Select, ctx: RuleContext) -> Iterable[LogicalOp]:
        setop = binding.child
        left_map = dict(zip(setop.output_columns, setop.left_columns))
        right_map = dict(zip(setop.output_columns, setop.right_columns))
        left_pred = substitute_columns(binding.predicate, left_map)
        right_pred = substitute_columns(binding.predicate, right_map)
        new_left = Select(setop.left, left_pred)
        new_right = Select(setop.right, right_pred)
        yield setop.with_children((new_left, new_right))


class SelectPushBelowUnionAll(_SelectPushBelowUnionBase):
    """``Select(p, L UNION ALL R) -> Select(p,L) UNION ALL Select(p,R)``."""

    name = "SelectPushBelowUnionAll"
    pattern = P(OpKind.SELECT, P(OpKind.UNION_ALL, ANY, ANY))


class SelectPushBelowUnion(_SelectPushBelowUnionBase):
    """``Select(p, L UNION R) -> Select(p,L) UNION Select(p,R)``
    (filters commute with duplicate elimination)."""

    name = "SelectPushBelowUnion"
    pattern = P(OpKind.SELECT, P(OpKind.UNION, ANY, ANY))


class SelectTrueRemoval(Rule):
    """``Select(TRUE, X) -> X`` -- drop a vacuous filter."""

    name = "SelectTrueRemoval"
    pattern = P(OpKind.SELECT, ANY)
    generation_hints = {"select_predicate": "true"}
    condition_note = "predicate is the literal TRUE"

    def precondition(self, binding: Select, ctx: RuleContext) -> bool:
        return binding.predicate == TRUE

    def substitute(self, binding: Select, ctx: RuleContext) -> Iterable[object]:
        yield binding.child
