"""Exploration rules over Apply (subquery unnesting).

The binder translates ``[NOT] EXISTS`` / ``[NOT] IN`` WHERE conjuncts into
:class:`~repro.logical.operators.Apply` operators; these rules unnest them
into the join algebra, where the full join/select rule library (and the
cheaper physical join operators) become applicable.  The fallback
``ApplyToNestedApply`` implementation rule keeps non-unnested Applies
executable, so every rule here is a pure cost optimization -- exactly the
setting the paper's RuleSet/Cost analyses need.
"""

from __future__ import annotations

from typing import Iterable

from repro.expr.expressions import conjunction
from repro.logical.operators import (
    Apply,
    Distinct,
    Join,
    JoinKind,
    LogicalOp,
    OpKind,
    Select,
)
from repro.logical.properties import equijoin_pairs, is_pure_equijoin
from repro.rules.common import passthrough_project, references_only
from repro.rules.framework import ANY, P, Rule, RuleContext


class ApplyToSemiJoin(Rule):
    """``Apply[semi](L, R, p) -> L SEMI-JOIN_p R``.

    A semi Apply keeps each left row iff some right row satisfies the
    correlation predicate -- which is the semi join's definition -- so the
    rewrite is unconditional.
    """

    name = "ApplyToSemiJoin"
    pattern = P(OpKind.APPLY, ANY, ANY, join_kinds=(JoinKind.SEMI,))

    def substitute(self, binding: Apply, ctx: RuleContext) -> Iterable[LogicalOp]:
        yield Join(
            JoinKind.SEMI, binding.left, binding.right, binding.predicate
        )


class ApplyToAntiJoin(Rule):
    """``Apply[anti](L, R, p) -> L ANTI-JOIN_p R`` (unconditional, dual of
    :class:`ApplyToSemiJoin`)."""

    name = "ApplyToAntiJoin"
    pattern = P(OpKind.APPLY, ANY, ANY, join_kinds=(JoinKind.ANTI,))

    def substitute(self, binding: Apply, ctx: RuleContext) -> Iterable[LogicalOp]:
        yield Join(
            JoinKind.ANTI, binding.left, binding.right, binding.predicate
        )


class ApplyDecorrelateSelect(Rule):
    """``Apply[k](L, Select_q(R), p) -> Apply[k](L, R, p AND q)``.

    A filter inside the subquery is just another condition a matching right
    row must satisfy; merging it into the correlation predicate exposes the
    bare right side to the unnesting and join rules.  Exact for both semi
    and anti: the per-left-row match set is identical.
    """

    name = "ApplyDecorrelateSelect"
    pattern = P(OpKind.APPLY, ANY, P(OpKind.SELECT, ANY))

    def substitute(self, binding: Apply, ctx: RuleContext) -> Iterable[LogicalOp]:
        inner: Select = binding.right
        yield Apply(
            binding.apply_kind,
            binding.left,
            inner.child,
            conjunction([binding.predicate, inner.predicate]),
        )


class SelectPushIntoApplyLeft(Rule):
    """``Select_q(Apply[k](L, R, p)) -> Apply[k](Select_q(L), R, p)``.

    An Apply outputs exactly its left columns, so a filter above it can
    always run below it; filtering first shrinks the outer loop of the
    correlated execution (and the left input of the unnested join).
    """

    name = "SelectPushIntoApplyLeft"
    pattern = P(OpKind.SELECT, P(OpKind.APPLY, ANY, ANY))
    condition_note = "filter references only the Apply's (left) output"

    def precondition(self, binding: Select, ctx: RuleContext) -> bool:
        apply_op: Apply = binding.child
        return references_only(
            binding.predicate, ctx.column_ids(apply_op.left)
        )

    def substitute(self, binding: Select, ctx: RuleContext) -> Iterable[LogicalOp]:
        apply_op: Apply = binding.child
        yield Apply(
            apply_op.apply_kind,
            Select(apply_op.left, binding.predicate),
            apply_op.right,
            apply_op.predicate,
        )


class SemiJoinToDistinctInnerJoin(Rule):
    """``L SEMI-JOIN R -> Project_L(L JOIN Distinct(Project_rcols(R)))`` for
    pure equi-joins.

    Deduplicating the *right* side on its join columns makes every left row
    match at most one right row (the predicate pins each right join column
    to the left row's value), so the inner join neither drops nor
    duplicates left rows.  Unlike :class:`SemiJoinToJoinOnKey` this needs
    no key on the right side -- the Distinct manufactures the uniqueness.
    """

    name = "SemiJoinToDistinctInnerJoin"
    pattern = P(OpKind.JOIN, ANY, ANY, join_kinds=(JoinKind.SEMI,))
    generation_hints = {"join_predicate": "fk_pk"}
    condition_note = "pure equi-join (every conjunct a cross-side equality)"

    def precondition(self, binding: Join, ctx: RuleContext) -> bool:
        left_ids = ctx.column_ids(binding.left)
        right_ids = ctx.column_ids(binding.right)
        if not is_pure_equijoin(binding.predicate, left_ids, right_ids):
            return False
        return bool(equijoin_pairs(binding.predicate))

    def substitute(self, binding: Join, ctx: RuleContext) -> Iterable[LogicalOp]:
        right_ids = ctx.column_ids(binding.right)
        right_cols = []
        for a, b in equijoin_pairs(binding.predicate):
            column = a if a.cid in right_ids else b
            if column not in right_cols:
                right_cols.append(column)
        deduped = Distinct(
            passthrough_project(binding.right, tuple(right_cols))
        )
        inner = Join(
            JoinKind.INNER, binding.left, deduped, binding.predicate
        )
        yield passthrough_project(inner, ctx.columns(binding.left))
