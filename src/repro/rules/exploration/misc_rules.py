"""Additional exploration rules: anti-join and AVG rewrites."""

from __future__ import annotations

from typing import Iterable

from repro.catalog.schema import DataType
from repro.expr.aggregates import AggregateCall, AggregateFunction
from repro.expr.expressions import (
    Arithmetic,
    ArithmeticOp,
    Column,
    ColumnRef,
    IsNull,
)
from repro.logical.operators import GbAgg, Join, JoinKind, LogicalOp, OpKind, Project, Select
from repro.rules.common import passthrough_project
from repro.rules.framework import ANY, P, Rule, RuleContext


class AntiJoinToLojFilter(Rule):
    """``L ANTI-JOIN R -> Project_L(Select(x IS NULL, L LOJ R))``.

    The classic NOT EXISTS rewrite: left-outer-join and keep exactly the
    NULL-extended rows.  Requires a right-side column ``x`` known NOT NULL
    in R, so that ``x IS NULL`` after the outer join identifies precisely
    the unmatched left rows (one output row per unmatched left row -- the
    anti-join semantics).
    """

    name = "AntiJoinToLojFilter"
    pattern = P(OpKind.JOIN, ANY, ANY, join_kinds=(JoinKind.ANTI,))
    condition_note = "right side has a column known NOT NULL"

    def _witness(self, binding: Join, ctx: RuleContext):
        right_props = ctx.props(binding.right)
        for column in right_props.columns:
            if column in right_props.non_null:
                return column
        return None

    def precondition(self, binding: Join, ctx: RuleContext) -> bool:
        return self._witness(binding, ctx) is not None

    def substitute(self, binding: Join, ctx: RuleContext) -> Iterable[LogicalOp]:
        witness = self._witness(binding, ctx)
        assert witness is not None
        loj = Join(
            JoinKind.LEFT_OUTER, binding.left, binding.right,
            binding.predicate,
        )
        filtered = Select(loj, IsNull(ColumnRef(witness)))
        yield passthrough_project(filtered, ctx.columns(binding.left))


class AvgToSumDivCount(Rule):
    """``AVG(x) -> SUM(x) / COUNT(x)`` -- decompose AVG.

    AVG is not directly decomposable (it cannot be combined from partial
    AVGs), but its SUM/COUNT form is, which unlocks the eager-aggregation
    and local/global split rules for queries that use AVG.  Division by a
    zero count yields NULL, matching AVG over an all-NULL group.
    """

    name = "AvgToSumDivCount"
    pattern = P(OpKind.GB_AGG, ANY)
    generation_hints = {"agg_args": "avg"}
    condition_note = "at least one AVG aggregate"

    def precondition(self, binding: GbAgg, ctx: RuleContext) -> bool:
        if binding.phase != "single":
            return False
        return any(
            call.function is AggregateFunction.AVG
            for _, call in binding.aggregates
        )

    def substitute(self, binding: GbAgg, ctx: RuleContext) -> Iterable[LogicalOp]:
        new_aggs = []
        outputs = []
        for index, (out_column, call) in enumerate(binding.aggregates):
            if call.function is not AggregateFunction.AVG:
                new_aggs.append((out_column, call))
                outputs.append((out_column, ColumnRef(out_column)))
                continue
            sum_col = Column(
                name=f"avg_sum_{index}", data_type=DataType.FLOAT
            )
            count_col = Column(
                name=f"avg_count_{index}",
                data_type=DataType.INT,
                nullable=False,
            )
            new_aggs.append(
                (sum_col, AggregateCall(AggregateFunction.SUM, call.argument))
            )
            new_aggs.append(
                (count_col,
                 AggregateCall(AggregateFunction.COUNT, call.argument))
            )
            outputs.append(
                (
                    out_column,
                    Arithmetic(
                        ArithmeticOp.DIV,
                        ColumnRef(sum_col),
                        ColumnRef(count_col),
                    ),
                )
            )
        rewritten = GbAgg(
            binding.child, binding.group_by, tuple(new_aggs), phase="single"
        )
        group_outputs = tuple(
            (column, ColumnRef(column)) for column in binding.group_by
        )
        yield Project(rewritten, group_outputs + tuple(outputs))
