"""Exploration rules over left outer joins.

Includes the paper's own running example (Section 3): the associativity of
an inner join with a left outer join, ``R JOIN (S LOJ T) -> (R JOIN S) LOJ
T``, which is valid when the inner-join predicate only touches R and S --
the rule-dependency scenario the paper uses to motivate why sufficient
firing conditions are hard to capture.
"""

from __future__ import annotations

from typing import Iterable

from repro.expr.expressions import is_null_rejecting
from repro.logical.operators import Join, JoinKind, LogicalOp, OpKind, Select
from repro.rules.common import references_only
from repro.rules.framework import ANY, P, Rule, RuleContext


class LojToJoinOnNullReject(Rule):
    """``Select(p, L LOJ R) -> Select(p, L JOIN R)`` when ``p`` rejects
    NULL-extended right-side rows.

    A null-rejecting predicate cannot be TRUE on rows whose right side is
    all-NULL, so the outer join's extra rows are filtered out anyway and the
    outer join can be simplified to an inner join.
    """

    name = "LojToJoinOnNullReject"
    pattern = P(
        OpKind.SELECT,
        P(OpKind.JOIN, ANY, ANY, join_kinds=(JoinKind.LEFT_OUTER,)),
    )
    generation_hints = {"select_predicate": "right_side"}
    condition_note = "filter predicate is null-rejecting on the right side"

    def precondition(self, binding: Select, ctx: RuleContext) -> bool:
        join: Join = binding.child
        right_columns = frozenset(ctx.columns(join.right))
        return is_null_rejecting(binding.predicate, right_columns)

    def substitute(self, binding: Select, ctx: RuleContext) -> Iterable[LogicalOp]:
        join: Join = binding.child
        inner = Join(JoinKind.INNER, join.left, join.right, join.predicate)
        yield Select(inner, binding.predicate)


class JoinLojAssociativity(Rule):
    """``A JOIN[p] (B LOJ[q] C) -> (A JOIN[p] B) LOJ[q] C``
    when ``p`` references only A and B.

    This is the paper's Section 3 example.  Note the rule *enables* join
    commutativity on the new ``A JOIN B`` -- the rule-dependency interaction
    the paper discusses.
    """

    name = "JoinLojAssociativity"
    pattern = P(
        OpKind.JOIN,
        ANY,
        P(OpKind.JOIN, ANY, ANY, join_kinds=(JoinKind.LEFT_OUTER,)),
        join_kinds=(JoinKind.INNER,),
    )
    generation_hints = {"join_predicate": "preserved_side"}
    condition_note = "inner-join predicate references only A and B"

    def precondition(self, binding: Join, ctx: RuleContext) -> bool:
        loj: Join = binding.right
        a_ids = ctx.column_ids(binding.left)
        b_ids = ctx.column_ids(loj.left)
        return references_only(binding.predicate, a_ids | b_ids)

    def substitute(self, binding: Join, ctx: RuleContext) -> Iterable[LogicalOp]:
        loj: Join = binding.right
        inner = Join(
            JoinKind.INNER, binding.left, loj.left, binding.predicate
        )
        yield Join(JoinKind.LEFT_OUTER, inner, loj.right, loj.predicate)


class LojPushSelectLeft(Rule):
    """``Select(p, L LOJ R) -> Select(p, L) LOJ R`` when ``p`` references
    only the preserved (left) side."""

    name = "LojPushSelectLeft"
    pattern = P(
        OpKind.SELECT,
        P(OpKind.JOIN, ANY, ANY, join_kinds=(JoinKind.LEFT_OUTER,)),
    )
    generation_hints = {"select_predicate": "left_side"}
    condition_note = "predicate references only left-side columns"

    def precondition(self, binding: Select, ctx: RuleContext) -> bool:
        join: Join = binding.child
        return references_only(
            binding.predicate, ctx.column_ids(join.left)
        )

    def substitute(self, binding: Select, ctx: RuleContext) -> Iterable[LogicalOp]:
        join: Join = binding.child
        new_left = Select(join.left, binding.predicate)
        yield join.with_children((new_left, join.right))
