"""Exploration rules over Distinct and semi-joins."""

from __future__ import annotations

from typing import Iterable

from repro.logical.operators import (
    Distinct,
    GbAgg,
    Join,
    JoinKind,
    LogicalOp,
    OpKind,
)
from repro.logical.properties import equijoin_pairs, is_pure_equijoin
from repro.rules.common import passthrough_project
from repro.rules.framework import ANY, P, Rule, RuleContext


class DistinctToGbAgg(Rule):
    """``Distinct(X) -> GbAgg(group by all columns of X)``.

    GROUP BY and DISTINCT agree on NULL handling (NULLs compare equal), so
    the rewrite is exact.
    """

    name = "DistinctToGbAgg"
    pattern = P(OpKind.DISTINCT, ANY)

    def substitute(self, binding: Distinct, ctx: RuleContext) -> Iterable[LogicalOp]:
        columns = ctx.columns(binding.child)
        yield GbAgg(binding.child, tuple(columns), (), phase="single")


class DistinctRemoveOnKey(Rule):
    """``Distinct(X) -> X`` when X already has a unique key (its rows are
    duplicate-free).  Substitutes the child group itself."""

    name = "DistinctRemoveOnKey"
    pattern = P(OpKind.DISTINCT, ANY)
    condition_note = "input has a declared/derived unique key"

    def precondition(self, binding: Distinct, ctx: RuleContext) -> bool:
        props = ctx.props(binding.child)
        return props.has_key(props.column_ids)

    def substitute(self, binding: Distinct, ctx: RuleContext) -> Iterable[object]:
        yield binding.child


class SemiJoinToJoinOnKey(Rule):
    """``L SEMI-JOIN R -> Project_L(L JOIN R)`` when R is unique on its join
    columns (each left row matches at most once, so no duplication)."""

    name = "SemiJoinToJoinOnKey"
    pattern = P(OpKind.JOIN, ANY, ANY, join_kinds=(JoinKind.SEMI,))
    generation_hints = {"join_predicate": "fk_pk"}
    condition_note = "pure equi-join; right side unique on its join columns"

    def precondition(self, binding: Join, ctx: RuleContext) -> bool:
        left_ids = ctx.column_ids(binding.left)
        right_props = ctx.props(binding.right)
        right_ids = right_props.column_ids
        if not is_pure_equijoin(binding.predicate, left_ids, right_ids):
            return False
        pairs = equijoin_pairs(binding.predicate)
        if not pairs:
            return False
        right_keys = frozenset(
            (b if b.cid in right_ids else a).cid for a, b in pairs
        )
        return right_props.has_key(right_keys)

    def substitute(self, binding: Join, ctx: RuleContext) -> Iterable[LogicalOp]:
        inner = Join(
            JoinKind.INNER, binding.left, binding.right, binding.predicate
        )
        yield passthrough_project(inner, ctx.columns(binding.left))
