"""Exploration rules over inner/cross joins."""

from __future__ import annotations

from typing import Iterable

from repro.expr.expressions import TRUE, conjuncts, referenced_columns
from repro.logical.operators import Join, JoinKind, LogicalOp, OpKind, Select
from repro.rules.common import predicate_or_true, references_only
from repro.rules.framework import ANY, P, Rule, RuleContext


class JoinCommutativity(Rule):
    """``A JOIN B -> B JOIN A`` (inner and cross joins only)."""

    name = "JoinCommutativity"
    pattern = P(OpKind.JOIN, ANY, ANY, join_kinds=(JoinKind.INNER, JoinKind.CROSS))

    def substitute(self, binding: Join, ctx: RuleContext) -> Iterable[LogicalOp]:
        yield Join(
            binding.join_kind, binding.right, binding.left, binding.predicate
        )


class JoinLeftAssociativity(Rule):
    """``(A JOIN B) JOIN C -> A JOIN (B JOIN C)``.

    All conjuncts of both predicates are pooled; those referencing only
    B and C move to the new bottom join, the remainder stays on top.
    """

    name = "JoinLeftAssociativity"
    pattern = P(
        OpKind.JOIN,
        P(OpKind.JOIN, ANY, ANY, join_kinds=(JoinKind.INNER,)),
        ANY,
        join_kinds=(JoinKind.INNER,),
    )
    condition_note = "at least one pooled conjunct references only B and C"

    def precondition(self, binding: Join, ctx: RuleContext) -> bool:
        return bool(self._partition(binding, ctx)[0])

    @staticmethod
    def _partition(binding: Join, ctx: RuleContext):
        bottom: Join = binding.left
        b_ids = ctx.column_ids(bottom.right)
        c_ids = ctx.column_ids(binding.right)
        pooled = list(conjuncts(bottom.predicate)) + list(
            conjuncts(binding.predicate)
        )
        pooled = [part for part in pooled if part != TRUE]
        inner = [
            part for part in pooled if references_only(part, b_ids | c_ids)
        ]
        outer = [part for part in pooled if part not in inner]
        return inner, outer

    def substitute(self, binding: Join, ctx: RuleContext) -> Iterable[LogicalOp]:
        bottom: Join = binding.left
        inner, outer = self._partition(binding, ctx)
        new_bottom = Join(
            JoinKind.INNER,
            bottom.right,
            binding.right,
            predicate_or_true(inner),
        )
        yield Join(
            JoinKind.INNER, bottom.left, new_bottom, predicate_or_true(outer)
        )


class JoinRightAssociativity(Rule):
    """``A JOIN (B JOIN C) -> (A JOIN B) JOIN C`` (mirror of the above)."""

    name = "JoinRightAssociativity"
    pattern = P(
        OpKind.JOIN,
        ANY,
        P(OpKind.JOIN, ANY, ANY, join_kinds=(JoinKind.INNER,)),
        join_kinds=(JoinKind.INNER,),
    )
    condition_note = "at least one pooled conjunct references only A and B"

    def precondition(self, binding: Join, ctx: RuleContext) -> bool:
        return bool(self._partition(binding, ctx)[0])

    @staticmethod
    def _partition(binding: Join, ctx: RuleContext):
        bottom: Join = binding.right
        a_ids = ctx.column_ids(binding.left)
        b_ids = ctx.column_ids(bottom.left)
        pooled = list(conjuncts(bottom.predicate)) + list(
            conjuncts(binding.predicate)
        )
        pooled = [part for part in pooled if part != TRUE]
        inner = [
            part for part in pooled if references_only(part, a_ids | b_ids)
        ]
        outer = [part for part in pooled if part not in inner]
        return inner, outer

    def substitute(self, binding: Join, ctx: RuleContext) -> Iterable[LogicalOp]:
        bottom: Join = binding.right
        inner, outer = self._partition(binding, ctx)
        new_bottom = Join(
            JoinKind.INNER,
            binding.left,
            bottom.left,
            predicate_or_true(inner),
        )
        yield Join(
            JoinKind.INNER, new_bottom, bottom.right, predicate_or_true(outer)
        )


class CrossToInnerJoin(Rule):
    """``Select(p, A CROSS B) -> Select(rest, A JOIN[p_ab] B)``.

    Conjuncts of ``p`` that reference both sides become the join predicate.
    """

    name = "CrossToInnerJoin"
    pattern = P(
        OpKind.SELECT, P(OpKind.JOIN, ANY, ANY, join_kinds=(JoinKind.CROSS,))
    )
    generation_hints = {"select_predicate": "cross_equality"}
    condition_note = "some conjunct references both join inputs"

    @staticmethod
    def _partition(binding: Select, ctx: RuleContext):
        join: Join = binding.child
        left_ids = ctx.column_ids(join.left)
        right_ids = ctx.column_ids(join.right)
        joining = []
        rest = []
        for part in conjuncts(binding.predicate):
            refs = {column.cid for column in referenced_columns(part)}
            if refs & left_ids and refs & right_ids:
                joining.append(part)
            else:
                rest.append(part)
        return joining, rest

    def precondition(self, binding: Select, ctx: RuleContext) -> bool:
        return bool(self._partition(binding, ctx)[0])

    def substitute(self, binding: Select, ctx: RuleContext) -> Iterable[LogicalOp]:
        join: Join = binding.child
        joining, rest = self._partition(binding, ctx)
        new_join = Join(
            JoinKind.INNER, join.left, join.right, predicate_or_true(joining)
        )
        if rest:
            yield Select(new_join, predicate_or_true(rest))
        else:
            yield new_join


class JoinPredicateToSelect(Rule):
    """``A JOIN[p] B -> Select(p, A CROSS B)`` -- predicate pull-out.

    The normalization inverse of :class:`CrossToInnerJoin`; gives the
    search both representations of an inner join.
    """

    name = "JoinPredicateToSelect"
    pattern = P(OpKind.JOIN, ANY, ANY, join_kinds=(JoinKind.INNER,))
    condition_note = "join predicate is not TRUE"

    def precondition(self, binding: Join, ctx: RuleContext) -> bool:
        return binding.predicate != TRUE

    def substitute(self, binding: Join, ctx: RuleContext) -> Iterable[LogicalOp]:
        cross = Join(JoinKind.CROSS, binding.left, binding.right, TRUE)
        yield Select(cross, binding.predicate)
