"""Exploration rules over set operations.

SQL set semantics: UNION/INTERSECT/EXCEPT eliminate duplicates and treat
NULLs as equal, so the join-based rewrites use *null-safe* equality
predicates (see :func:`repro.rules.common.null_safe_equals`).
"""

from __future__ import annotations

from typing import Iterable

from repro.expr.expressions import Column
from repro.logical.operators import (
    Distinct,
    Except,
    Intersect,
    Join,
    JoinKind,
    LogicalOp,
    OpKind,
    Union,
    UnionAll,
)
from repro.rules.common import pairwise_null_safe_equals, passthrough_project
from repro.rules.framework import ANY, P, Rule, RuleContext


class UnionAllCommutativity(Rule):
    """``L UNION ALL R -> R UNION ALL L`` (branch maps swap with them)."""

    name = "UnionAllCommutativity"
    pattern = P(OpKind.UNION_ALL, ANY, ANY)

    def substitute(self, binding: UnionAll, ctx: RuleContext) -> Iterable[LogicalOp]:
        yield UnionAll(
            binding.right,
            binding.left,
            binding.output_columns,
            binding.right_columns,
            binding.left_columns,
        )


class UnionAllAssociativity(Rule):
    """``(A UNION ALL B) UNION ALL C -> A UNION ALL (B UNION ALL C)``.

    The new intermediate union gets fresh output columns typed after the
    outer result.
    """

    name = "UnionAllAssociativity"
    pattern = P(OpKind.UNION_ALL, P(OpKind.UNION_ALL, ANY, ANY), ANY)

    def substitute(self, binding: UnionAll, ctx: RuleContext) -> Iterable[LogicalOp]:
        inner: UnionAll = binding.left
        # outer.left_columns are inner's outputs; trace through to A and B.
        to_a = dict(zip(inner.output_columns, inner.left_columns))
        to_b = dict(zip(inner.output_columns, inner.right_columns))
        a_cols = tuple(to_a[col] for col in binding.left_columns)
        b_cols = tuple(to_b[col] for col in binding.left_columns)
        mid = tuple(
            Column(name=out.name, data_type=out.data_type, nullable=True)
            for out in binding.output_columns
        )
        new_inner = UnionAll(
            inner.right, binding.right, mid, b_cols, binding.right_columns
        )
        yield UnionAll(
            inner.left, new_inner, binding.output_columns, a_cols, mid
        )


class UnionToDistinctUnionAll(Rule):
    """``L UNION R -> Distinct(L UNION ALL R)``."""

    name = "UnionToDistinctUnionAll"
    pattern = P(OpKind.UNION, ANY, ANY)

    def substitute(self, binding: Union, ctx: RuleContext) -> Iterable[LogicalOp]:
        merged = UnionAll(
            binding.left,
            binding.right,
            binding.output_columns,
            binding.left_columns,
            binding.right_columns,
        )
        yield Distinct(merged)


class IntersectToSemiJoin(Rule):
    """``L INTERSECT R -> Distinct(Project(L SEMI-JOIN R))`` with null-safe
    per-column equality as the semi-join predicate.

    The Distinct must sit *above* the projection: deduplicating the full
    left rows first and projecting afterwards would re-introduce
    duplicates whenever ``left_columns`` is a strict subset of the left
    input's columns.
    """

    name = "IntersectToSemiJoin"
    pattern = P(OpKind.INTERSECT, ANY, ANY)

    def substitute(self, binding: Intersect, ctx: RuleContext) -> Iterable[LogicalOp]:
        predicate = pairwise_null_safe_equals(
            binding.left_columns, binding.right_columns
        )
        semi = Join(JoinKind.SEMI, binding.left, binding.right, predicate)
        renames = dict(zip(binding.output_columns, binding.left_columns))
        projected = passthrough_project(semi, binding.output_columns, renames)
        yield Distinct(projected)


class ExceptToAntiJoin(Rule):
    """``L EXCEPT R -> Distinct(Project(L ANTI-JOIN R))`` with null-safe
    per-column equality as the anti-join predicate.

    As with :class:`IntersectToSemiJoin`, the Distinct must apply to the
    *projected* columns, not the full left rows.
    """

    name = "ExceptToAntiJoin"
    pattern = P(OpKind.EXCEPT, ANY, ANY)

    def substitute(self, binding: Except, ctx: RuleContext) -> Iterable[LogicalOp]:
        predicate = pairwise_null_safe_equals(
            binding.left_columns, binding.right_columns
        )
        anti = Join(JoinKind.ANTI, binding.left, binding.right, predicate)
        renames = dict(zip(binding.output_columns, binding.left_columns))
        projected = passthrough_project(anti, binding.output_columns, renames)
        yield Distinct(projected)
