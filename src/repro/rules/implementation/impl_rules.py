"""Implementation (physical transformation) rules.

These transform logical operators into physical ones (paper, Section 2.1:
"Implementation rules ... transform logical operator trees into hybrid
logical/physical trees", e.g. logical join -> physical hash join).  Every
logical operator kind has at least one unconditionally applicable
implementation rule, so disabling any *logical* rule still leaves the
optimizer able to produce a plan -- matching the paper's experimental setup,
which turns logical rules on and off.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.expr.expressions import Column, conjunction
from repro.logical.operators import (
    Apply,
    Distinct,
    Except,
    GbAgg,
    Get,
    Intersect,
    Join,
    JoinKind,
    Limit,
    OpKind,
    Project,
    Select,
    Sort,
    Union,
    UnionAll,
)
from repro.physical.operators import (
    ComputeScalar,
    Concat,
    Filter,
    HashAggregate,
    HashDistinct,
    HashExcept,
    HashIntersect,
    HashJoin,
    HashUnion,
    MergeJoin,
    NestedApply,
    NestedLoopsJoin,
    PhysicalOp,
    Sort as PhysicalSort,
    StreamAggregate,
    TableScan,
    Top,
)
from repro.rules.framework import ANY, P, Rule, RuleContext, RuleType


class ImplementationRule(Rule):
    rule_type = RuleType.IMPLEMENTATION


class GetToTableScan(ImplementationRule):
    """Implement base-table access as a heap scan."""

    name = "GetToTableScan"
    pattern = P(OpKind.GET)

    def substitute(self, binding: Get, ctx: RuleContext) -> Iterable[PhysicalOp]:
        yield TableScan(binding.table, binding.columns, binding.alias)


class SelectToFilter(ImplementationRule):
    name = "SelectToFilter"
    pattern = P(OpKind.SELECT, ANY)

    def substitute(self, binding: Select, ctx: RuleContext) -> Iterable[PhysicalOp]:
        yield Filter(binding.child, binding.predicate)


class ProjectToComputeScalar(ImplementationRule):
    name = "ProjectToComputeScalar"
    pattern = P(OpKind.PROJECT, ANY)

    def substitute(self, binding: Project, ctx: RuleContext) -> Iterable[PhysicalOp]:
        yield ComputeScalar(binding.child, binding.outputs)


class JoinToNestedLoops(ImplementationRule):
    """Nested loops handles every join kind and arbitrary predicates."""

    name = "JoinToNestedLoops"
    pattern = P(OpKind.JOIN, ANY, ANY)

    def substitute(self, binding: Join, ctx: RuleContext) -> Iterable[PhysicalOp]:
        yield NestedLoopsJoin(
            binding.join_kind, binding.left, binding.right, binding.predicate
        )


class ApplyToNestedApply(ImplementationRule):
    """Naive (non-unnested) subquery execution; always available, so an
    Apply the exploration rules cannot unnest still has a plan -- it is
    just priced above the unnested alternatives."""

    name = "ApplyToNestedApply"
    pattern = P(OpKind.APPLY, ANY, ANY)

    def substitute(
        self, binding: Apply, ctx: RuleContext
    ) -> Iterable[PhysicalOp]:
        yield NestedApply(
            binding.apply_kind, binding.left, binding.right, binding.predicate
        )


def _split_equi_predicate(
    binding: Join, ctx: RuleContext
) -> Tuple[Tuple[Column, ...], Tuple[Column, ...], object]:
    """Orient equi-join pairs as (left keys, right keys) and collect the
    residual (non-equi) conjuncts."""
    from repro.expr.expressions import (
        ColumnRef,
        Comparison,
        ComparisonOp,
        conjuncts,
    )

    left_ids = ctx.column_ids(binding.left)
    left_keys: List[Column] = []
    right_keys: List[Column] = []
    residual = []
    for part in conjuncts(binding.predicate):
        is_equi = (
            isinstance(part, Comparison)
            and part.op is ComparisonOp.EQ
            and isinstance(part.left, ColumnRef)
            and isinstance(part.right, ColumnRef)
        )
        if is_equi:
            a, b = part.left.column, part.right.column
            if a.cid in left_ids and b.cid not in left_ids:
                left_keys.append(a)
                right_keys.append(b)
                continue
            if b.cid in left_ids and a.cid not in left_ids:
                left_keys.append(b)
                right_keys.append(a)
                continue
        residual.append(part)
    return tuple(left_keys), tuple(right_keys), conjunction(residual)


class JoinToHashJoin(ImplementationRule):
    """Hash join for equi-joins (inner, left outer, semi, anti)."""

    name = "JoinToHashJoin"
    pattern = P(
        OpKind.JOIN,
        ANY,
        ANY,
        join_kinds=(
            JoinKind.INNER,
            JoinKind.LEFT_OUTER,
            JoinKind.SEMI,
            JoinKind.ANTI,
        ),
    )
    condition_note = "at least one cross-side equality conjunct"

    def precondition(self, binding: Join, ctx: RuleContext) -> bool:
        left_keys, _, _ = _split_equi_predicate(binding, ctx)
        return bool(left_keys)

    def substitute(self, binding: Join, ctx: RuleContext) -> Iterable[PhysicalOp]:
        left_keys, right_keys, residual = _split_equi_predicate(binding, ctx)
        yield HashJoin(
            binding.join_kind,
            binding.left,
            binding.right,
            left_keys,
            right_keys,
            residual,
        )


class JoinToMergeJoin(ImplementationRule):
    """Merge join for inner equi-joins (requires both inputs sorted)."""

    name = "JoinToMergeJoin"
    pattern = P(OpKind.JOIN, ANY, ANY, join_kinds=(JoinKind.INNER,))
    condition_note = "at least one cross-side equality conjunct"

    def precondition(self, binding: Join, ctx: RuleContext) -> bool:
        left_keys, _, _ = _split_equi_predicate(binding, ctx)
        return bool(left_keys)

    def substitute(self, binding: Join, ctx: RuleContext) -> Iterable[PhysicalOp]:
        left_keys, right_keys, residual = _split_equi_predicate(binding, ctx)
        yield MergeJoin(
            binding.left, binding.right, left_keys, right_keys, residual
        )


class GbAggToHashAggregate(ImplementationRule):
    name = "GbAggToHashAggregate"
    pattern = P(OpKind.GB_AGG, ANY)

    def substitute(self, binding: GbAgg, ctx: RuleContext) -> Iterable[PhysicalOp]:
        yield HashAggregate(binding.child, binding.group_by, binding.aggregates)


class GbAggToStreamAggregate(ImplementationRule):
    """Stream aggregate; requires input sorted on the grouping columns
    (the optimizer inserts a Sort enforcer when nothing provides it)."""

    name = "GbAggToStreamAggregate"
    pattern = P(OpKind.GB_AGG, ANY)

    def substitute(self, binding: GbAgg, ctx: RuleContext) -> Iterable[PhysicalOp]:
        yield StreamAggregate(
            binding.child, binding.group_by, binding.aggregates
        )


class UnionAllToConcat(ImplementationRule):
    name = "UnionAllToConcat"
    pattern = P(OpKind.UNION_ALL, ANY, ANY)

    def substitute(self, binding: UnionAll, ctx: RuleContext) -> Iterable[PhysicalOp]:
        yield Concat(
            binding.left,
            binding.right,
            binding.output_columns,
            binding.left_columns,
            binding.right_columns,
        )


class UnionToHashUnion(ImplementationRule):
    name = "UnionToHashUnion"
    pattern = P(OpKind.UNION, ANY, ANY)

    def substitute(self, binding: Union, ctx: RuleContext) -> Iterable[PhysicalOp]:
        yield HashUnion(
            binding.left,
            binding.right,
            binding.output_columns,
            binding.left_columns,
            binding.right_columns,
        )


class IntersectToHashIntersect(ImplementationRule):
    name = "IntersectToHashIntersect"
    pattern = P(OpKind.INTERSECT, ANY, ANY)

    def substitute(self, binding: Intersect, ctx: RuleContext) -> Iterable[PhysicalOp]:
        yield HashIntersect(
            binding.left,
            binding.right,
            binding.output_columns,
            binding.left_columns,
            binding.right_columns,
        )


class ExceptToHashExcept(ImplementationRule):
    name = "ExceptToHashExcept"
    pattern = P(OpKind.EXCEPT, ANY, ANY)

    def substitute(self, binding: Except, ctx: RuleContext) -> Iterable[PhysicalOp]:
        yield HashExcept(
            binding.left,
            binding.right,
            binding.output_columns,
            binding.left_columns,
            binding.right_columns,
        )


class DistinctToHashDistinct(ImplementationRule):
    name = "DistinctToHashDistinct"
    pattern = P(OpKind.DISTINCT, ANY)

    def substitute(self, binding: Distinct, ctx: RuleContext) -> Iterable[PhysicalOp]:
        yield HashDistinct(binding.child)


class SortToPhysicalSort(ImplementationRule):
    name = "SortToPhysicalSort"
    pattern = P(OpKind.SORT, ANY)

    def substitute(self, binding: Sort, ctx: RuleContext) -> Iterable[PhysicalOp]:
        yield PhysicalSort(binding.child, binding.keys)


class LimitToTop(ImplementationRule):
    name = "LimitToTop"
    pattern = P(OpKind.LIMIT, ANY)

    def substitute(self, binding: Limit, ctx: RuleContext) -> Iterable[PhysicalOp]:
        yield Top(binding.child, binding.count)
