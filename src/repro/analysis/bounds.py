"""Sound row-count bounds for logical trees.

Unlike the estimates in :mod:`repro.logical.cardinality` (heuristic point
values), these are *guaranteed* intervals: for a given database state whose
base-table row counts match the statistics, the true result size always
falls inside ``[lo, hi]``.  Two equivalent expressions must therefore have
overlapping intervals -- a substitution whose bounds are disjoint from its
binding's, or that is provably empty while the binding is not, cannot be
semantics-preserving.

Emptiness propagation includes a contradiction check: a ``Select`` (or
inner-join predicate) with an ``IS NULL`` conjunct over a column that is
derived non-NULL in its input provably yields zero rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.context import TreeContext
from repro.expr.expressions import (
    ColumnRef,
    Expr,
    IsNull,
    Literal,
    conjuncts,
)
from repro.logical.operators import (
    GbAgg,
    Get,
    Join,
    JoinKind,
    Limit,
    LogicalOp,
    OpKind,
    Select,
)

INF = math.inf


@dataclass(frozen=True)
class RowBounds:
    """A sound ``[lo, hi]`` interval on a relation's row count."""

    lo: float
    hi: float

    @property
    def provably_empty(self) -> bool:
        return self.hi <= 0

    def overlaps(self, other: "RowBounds") -> bool:
        return self.lo <= other.hi and other.lo <= self.hi

    def __str__(self) -> str:
        hi = "inf" if math.isinf(self.hi) else f"{self.hi:g}"
        return f"[{self.lo:g}, {hi}]"


def _contradictory(predicate: Expr, ctx: TreeContext, child: LogicalOp) -> bool:
    """Does some conjunct require a provably non-NULL column to be NULL?"""
    non_null = ctx.props(child).non_null
    for conjunct in conjuncts(predicate):
        if isinstance(conjunct, IsNull) and isinstance(
            conjunct.arg, ColumnRef
        ):
            if conjunct.arg.column in non_null:
                return True
        if isinstance(conjunct, Literal) and conjunct.value is False:
            return True
    return False


class BoundsDeriver:
    """Derives :class:`RowBounds` bottom-up over a logical tree."""

    def __init__(self, ctx: TreeContext) -> None:
        self.ctx = ctx
        self.stats = ctx.estimator.stats

    def derive(self, op: LogicalOp) -> RowBounds:
        handler = self._HANDLERS[op.kind]
        return handler(self, op)

    # ------------------------------------------------------------- per-op

    def _derive_get(self, op: Get) -> RowBounds:
        if self.stats.has(op.table):
            rows = float(self.stats.get(op.table).row_count)
            return RowBounds(rows, rows)
        return RowBounds(0.0, INF)

    def _derive_select(self, op: Select) -> RowBounds:
        child = self.derive(op.child)
        if _contradictory(op.predicate, self.ctx, op.child):
            return RowBounds(0.0, 0.0)
        if isinstance(op.predicate, Literal) and op.predicate.value is True:
            return child
        return RowBounds(0.0, child.hi)

    def _derive_passthrough(self, op: LogicalOp) -> RowBounds:
        (child,) = op.children
        return self.derive(child)

    def _derive_join(self, op: Join) -> RowBounds:
        left = self.derive(op.left)
        right = self.derive(op.right)
        kind = op.join_kind
        if kind in (JoinKind.SEMI, JoinKind.ANTI):
            return RowBounds(0.0, left.hi)
        hi = left.hi * right.hi
        if kind is JoinKind.LEFT_OUTER:
            # Every left row appears at least once (NULL-extended if
            # unmatched) and at most once per right row.
            return RowBounds(left.lo, left.hi * max(right.hi, 1.0))
        if kind is JoinKind.CROSS:
            return RowBounds(left.lo * right.lo, hi)
        if _contradictory(op.predicate, self.ctx, op.left) or _contradictory(
            op.predicate, self.ctx, op.right
        ):
            return RowBounds(0.0, 0.0)
        return RowBounds(0.0, hi)

    def _derive_apply(self, op: LogicalOp) -> RowBounds:
        # Semi/anti Apply keeps a subset of left rows (like the unnested
        # semi/anti join); the right side only filters.
        left = self.derive(op.children[0])
        self.derive(op.children[1])
        return RowBounds(0.0, left.hi)

    def _derive_gbagg(self, op: GbAgg) -> RowBounds:
        child = self.derive(op.child)
        if not op.group_by:
            return RowBounds(1.0, 1.0)  # scalar aggregate: always one row
        lo = 1.0 if child.lo > 0 else 0.0
        return RowBounds(lo, child.hi)

    def _derive_union_all(self, op: LogicalOp) -> RowBounds:
        left, right = (self.derive(child) for child in op.children)
        return RowBounds(left.lo + right.lo, left.hi + right.hi)

    def _derive_union(self, op: LogicalOp) -> RowBounds:
        left, right = (self.derive(child) for child in op.children)
        lo = 1.0 if (left.lo + right.lo) > 0 else 0.0
        return RowBounds(lo, left.hi + right.hi)

    def _derive_intersect(self, op: LogicalOp) -> RowBounds:
        left, right = (self.derive(child) for child in op.children)
        return RowBounds(0.0, min(left.hi, right.hi))

    def _derive_except(self, op: LogicalOp) -> RowBounds:
        left = self.derive(op.children[0])
        self.derive(op.children[1])
        return RowBounds(0.0, left.hi)

    def _derive_distinct(self, op: LogicalOp) -> RowBounds:
        (child_op,) = op.children
        child = self.derive(child_op)
        lo = 1.0 if child.lo > 0 else 0.0
        return RowBounds(lo, child.hi)

    def _derive_limit(self, op: Limit) -> RowBounds:
        (child_op,) = op.children
        child = self.derive(child_op)
        count = float(op.count)
        return RowBounds(min(child.lo, count), min(child.hi, count))

    _HANDLERS = {
        OpKind.GET: _derive_get,
        OpKind.SELECT: _derive_select,
        OpKind.PROJECT: _derive_passthrough,
        OpKind.JOIN: _derive_join,
        OpKind.APPLY: _derive_apply,
        OpKind.GB_AGG: _derive_gbagg,
        OpKind.UNION_ALL: _derive_union_all,
        OpKind.UNION: _derive_union,
        OpKind.INTERSECT: _derive_intersect,
        OpKind.EXCEPT: _derive_except,
        OpKind.DISTINCT: _derive_distinct,
        OpKind.SORT: _derive_passthrough,
        OpKind.LIMIT: _derive_limit,
    }
