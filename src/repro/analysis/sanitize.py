"""Pass 3: the plan sanitizer.

Invariant checks the optimizer can run on itself, wired into
:mod:`repro.optimizer.engine` behind ``OptimizerConfig.sanitize_plans``
(off by default -- zero overhead unless enabled):

* **SA301** every column an inserted memo expression references must be
  produced by its child groups;
* **SA302** an expression's derived output schema must equal its group's
  (a substitution that lands a different-schema expression in a group
  corrupts every plan extracted through it);
* **SA303** every physical operator's ordering requirements must be
  satisfied by what its children provide (e.g. a MergeJoin over unsorted
  input);
* **SA304** every costed operator must have a finite, non-negative cost;
* **SA306** the final physical plan must resolve all column references
  bottom-up and produce the query's output columns.

**SA305** is the cross-run monotonicity invariant ``Cost(q) <=
Cost(q, not R)`` -- disabling rules can only remove alternatives, so the
unrestricted optimizer must never pick a costlier plan than a restricted
one.  It cannot be checked inside a single optimization;
:class:`MonotonicityGuard` is the assertion hook callers feed with
(base cost, restricted cost) pairs.

All violations raise :class:`PlanSanityError` (an
:class:`~repro.optimizer.result.OptimizationError`), so a corrupted
rewrite fails the optimization instead of silently producing a wrong
plan.
"""

from __future__ import annotations

import math
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.catalog.schema import Catalog
from repro.expr.expressions import Column, referenced_columns
from repro.logical.operators import (
    GbAgg,
    GroupRef,
    Join,
    LogicalOp,
    OpKind,
    Project,
    Select,
    Sort as LogicalSort,
    is_set_op,
)
from repro.logical.properties import PropertyDeriver
from repro.optimizer.result import OptimizationError
from repro.physical.operators import (
    ComputeScalar,
    Filter,
    HashJoin,
    MergeJoin,
    Ordering,
    PhysicalOp,
    PhysOpKind,
    Sort as PhysicalSort,
    Top,
    ordering_satisfies,
)


class PlanSanityError(OptimizationError):
    """A sanitizer invariant was violated."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code


def _op_referenced_columns(op: LogicalOp) -> Iterable[Column]:
    """Columns the operator's own arguments reference (children excluded)."""
    if isinstance(op, (Select, Join)):
        return referenced_columns(op.predicate)
    if isinstance(op, Project):
        refs: List[Column] = []
        for _, expr in op.outputs:
            refs.extend(referenced_columns(expr))
        return refs
    if isinstance(op, GbAgg):
        refs = list(op.group_by)
        for _, call in op.aggregates:
            if call.argument is not None:
                refs.extend(referenced_columns(call.argument))
        return refs
    if is_set_op(op):
        return tuple(op.left_columns) + tuple(op.right_columns)
    if isinstance(op, LogicalSort):
        return tuple(key.column for key in op.keys)
    return ()


class PlanSanitizer:
    """Invariant checks over memo insertions and extracted physical plans."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._deriver = PropertyDeriver(catalog)
        #: Number of invariant checks performed (for overhead accounting
        #: and the off-by-default test).
        self.checks = 0

    # ------------------------------------------------------ memo insertions

    def check_group_expr(self, expr, memo, rule_name: Optional[str] = None) -> None:
        """Validate one memo-form group expression a substitution inserted.

        ``expr.op``'s children are :class:`GroupRef` leaves; the expression
        must only reference columns its child groups produce (SA301) and
        must derive the same output schema as its group (SA302).
        """
        self.checks += 1
        op = expr.op
        origin = f" (inserted by rule {rule_name})" if rule_name else ""
        available: Set[int] = set()
        child_props = []
        for child in op.children:
            if not isinstance(child, GroupRef):
                raise PlanSanityError(
                    "SA301",
                    f"memo expression {op.describe()} has a non-GroupRef "
                    f"child{origin}",
                )
            props = memo.group(child.group_id).props
            child_props.append(props)
            available.update(props.column_ids)
        for column in _op_referenced_columns(op):
            if op.children and column.cid not in available:
                raise PlanSanityError(
                    "SA301",
                    f"{op.describe()} references column "
                    f"{column.qualified_name}#{column.cid}, which no child "
                    f"group produces{origin}",
                )
        derived = self._deriver.derive(op, tuple(child_props))
        group_props = memo.group(expr.group_id).props
        if derived.column_ids != group_props.column_ids:
            raise PlanSanityError(
                "SA302",
                f"{op.describe()} derives output columns "
                f"{sorted(derived.column_ids)} but its group's schema is "
                f"{sorted(group_props.column_ids)}{origin}",
            )

    # ---------------------------------------------------------------- costs

    def check_cost(self, op: PhysicalOp, cost: float) -> None:
        """SA304: a costed physical alternative must have a sane cost."""
        self.checks += 1
        if math.isnan(cost) or cost < 0.0:
            raise PlanSanityError(
                "SA304",
                f"{op.describe()} was costed at {cost!r}; costs must be "
                "finite and non-negative",
            )

    # ---------------------------------------------------------- final plans

    def check_plan(
        self, plan: PhysicalOp, output_columns: Tuple[Column, ...]
    ) -> None:
        """Validate a fully extracted physical plan bottom-up.

        Checks column-reference resolution (SA301), ordering requirements
        (SA303) and output completeness (SA306).
        """
        self.checks += 1
        available, _provided = self._check_node(plan)
        missing = [
            column
            for column in output_columns
            if column.cid not in available
        ]
        if missing:
            names = ", ".join(c.qualified_name for c in missing)
            raise PlanSanityError(
                "SA306",
                f"final plan does not produce required output column(s) "
                f"{names}",
            )

    def _check_node(
        self, op: PhysicalOp
    ) -> Tuple[FrozenSet[int], Ordering]:
        child_results = [
            self._check_node(child)
            for child in op.children
            if isinstance(child, PhysicalOp)
        ]
        if len(child_results) != len(op.children):
            raise PlanSanityError(
                "SA301",
                f"{op.describe()} has an unextracted (non-physical) child",
            )
        child_columns = [columns for columns, _ in child_results]
        child_orderings = tuple(ordering for _, ordering in child_results)

        requirements = op.required_child_orderings()
        for index, (required, provided) in enumerate(
            zip(requirements, child_orderings)
        ):
            if not ordering_satisfies(provided, required):
                raise PlanSanityError(
                    "SA303",
                    f"{op.describe()} requires child {index} ordered by "
                    f"{required} but the child provides {provided}",
                )

        available = self._available_columns(op, child_columns)
        provided = op.provided_ordering(child_orderings)
        return available, provided

    def _available_columns(
        self, op: PhysicalOp, child_columns: List[FrozenSet[int]]
    ) -> FrozenSet[int]:
        kind = op.kind

        def require(columns: Iterable[Column], scope: FrozenSet[int], what: str):
            for column in columns:
                if column.cid not in scope:
                    raise PlanSanityError(
                        "SA301",
                        f"{op.describe()}: {what} references column "
                        f"{column.qualified_name}#{column.cid}, which its "
                        "input does not produce",
                    )

        if kind is PhysOpKind.TABLE_SCAN:
            return frozenset(column.cid for column in op.columns)
        if kind is PhysOpKind.FILTER:
            assert isinstance(op, Filter)
            (child,) = child_columns
            require(referenced_columns(op.predicate), child, "predicate")
            return child
        if kind is PhysOpKind.COMPUTE_SCALAR:
            assert isinstance(op, ComputeScalar)
            (child,) = child_columns
            for _, expr in op.outputs:
                require(referenced_columns(expr), child, "output expression")
            return frozenset(column.cid for column in op.output_columns)
        if kind is PhysOpKind.NESTED_LOOPS_JOIN:
            left, right = child_columns
            require(
                referenced_columns(op.predicate), left | right, "predicate"
            )
            if not op.join_kind.preserves_right_columns:
                return left
            return left | right
        if kind is PhysOpKind.NESTED_APPLY:
            left, right = child_columns
            require(
                referenced_columns(op.predicate), left | right, "predicate"
            )
            return left
        if kind is PhysOpKind.HASH_JOIN:
            assert isinstance(op, HashJoin)
            left, right = child_columns
            require(op.left_keys, left, "left keys")
            require(op.right_keys, right, "right keys")
            require(referenced_columns(op.residual), left | right, "residual")
            if not op.join_kind.preserves_right_columns:
                return left
            return left | right
        if kind is PhysOpKind.MERGE_JOIN:
            assert isinstance(op, MergeJoin)
            left, right = child_columns
            require(op.left_keys, left, "left keys")
            require(op.right_keys, right, "right keys")
            require(referenced_columns(op.residual), left | right, "residual")
            return left | right
        if kind in (PhysOpKind.HASH_AGGREGATE, PhysOpKind.STREAM_AGGREGATE):
            (child,) = child_columns
            require(op.group_by, child, "grouping")
            for _, call in op.aggregates:
                if call.argument is not None:
                    require(
                        referenced_columns(call.argument),
                        child,
                        "aggregate argument",
                    )
            return frozenset(column.cid for column in op.output_columns)
        if kind is PhysOpKind.SORT:
            assert isinstance(op, PhysicalSort)
            (child,) = child_columns
            require((key.column for key in op.keys), child, "sort key")
            return child
        if kind in (
            PhysOpKind.CONCAT,
            PhysOpKind.HASH_UNION,
            PhysOpKind.HASH_INTERSECT,
            PhysOpKind.HASH_EXCEPT,
        ):
            left, right = child_columns
            require(op.left_columns, left, "left input columns")
            require(op.right_columns, right, "right input columns")
            return frozenset(column.cid for column in op.output_columns)
        if kind is PhysOpKind.HASH_DISTINCT:
            (child,) = child_columns
            return child
        if kind is PhysOpKind.TOP:
            assert isinstance(op, Top)
            (child,) = child_columns
            return child
        raise PlanSanityError(
            "SA301", f"unknown physical operator kind {kind}"
        )


class MonotonicityGuard:
    """Assertion hook for ``Cost(q) <= Cost(q, not R)`` (SA305).

    Disabling rules only removes alternatives from the search space, so the
    unrestricted optimizer must never pick a plan costlier than a restricted
    run's.  Feed the guard one :meth:`observe` call per (query, disabled
    rule set) pair; violations are collected as diagnostics, and
    :meth:`assert_ok` turns them into a hard failure.

    The invariant only applies to *complete* searches: when either run hit
    an exploration budget cap (``OptimizeResult.stats.budget_exhausted``)
    the unrestricted space is truncated rather than a superset, and callers
    must not feed the pair to the guard.

    A small relative tolerance absorbs float accumulation-order noise.
    """

    def __init__(self, tolerance: float = 1e-9) -> None:
        self.tolerance = tolerance
        self.violations: List[Diagnostic] = []
        self.observations = 0

    def observe(
        self,
        query_label: str,
        base_cost: float,
        restricted_cost: float,
        disabled: Iterable[str] = (),
    ) -> bool:
        """Record one comparison; returns True when the invariant holds."""
        self.observations += 1
        if base_cost <= restricted_cost * (1.0 + self.tolerance):
            return True
        rules = ", ".join(sorted(disabled)) or "-"
        self.violations.append(
            Diagnostic(
                code="SA305",
                severity=Severity.ERROR,
                message=(
                    f"Cost(q)={base_cost:.4f} exceeds "
                    f"Cost(q, not {{{rules}}})={restricted_cost:.4f}: "
                    "disabling rules produced a cheaper plan"
                ),
                location=query_label,
            )
        )
        return False

    def assert_ok(self) -> None:
        if self.violations:
            raise PlanSanityError(
                "SA305",
                f"{len(self.violations)} monotonicity violation(s); "
                f"first: {self.violations[0].message}",
            )
