"""Pass 1: registry lint.

Structural checks over the rule registry that need no binding synthesis:

* **RL101** pattern arity: every non-generic pattern node must have exactly
  as many children as the operator it names (a mismatched node can never
  structurally match, so the rule is dead by construction);
* **RL102** pattern XML round-trip: ``pattern_from_xml(pattern_to_xml(p))``
  must reproduce ``p`` -- the XML export is the interface the query
  generator consumes, so a lossy round-trip silently breaks generation;
* **RL103** rule naming: empty or non-identifier names break the registry's
  name-keyed APIs and CLI selection;
* **RL110** duplicate patterns (INFO): two rules with identical patterns
  are normal when preconditions differ, but worth surfacing;
* **RL111** subsumed patterns (INFO): one rule's pattern matches strictly
  more trees than another's;
* **RL120** dead pattern (WARNING): no binding could be synthesized from
  the pattern against any bundled workload schema;
* **RL121** dead precondition (WARNING): bindings were synthesized but the
  precondition rejected every one of them;
* **RL130/131/132** documentation drift (WARNING): ``docs/RULES.md`` is
  missing a rule, documents a rule the registry no longer has, or shows a
  stale pattern.
"""

from __future__ import annotations

import random
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.context import TreeContext
from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.logical.operators import LogicalOp, OpKind
from repro.logical.validate import ValidationError, validate_tree
from repro.rules.framework import (
    PatternNode,
    Rule,
    match_structure,
    pattern_from_xml,
    pattern_to_xml,
    walk_pattern,
)
from repro.rules.registry import RuleRegistry
from repro.testing.builders import GenerationFailure
from repro.testing.pattern_gen import PatternInstantiator, merge_hints

#: Children each operator kind takes; a non-generic pattern node whose child
#: count differs can never match (see ``match_structure``).
OP_ARITY = {
    OpKind.GET: 0,
    OpKind.SELECT: 1,
    OpKind.PROJECT: 1,
    OpKind.GB_AGG: 1,
    OpKind.DISTINCT: 1,
    OpKind.SORT: 1,
    OpKind.LIMIT: 1,
    OpKind.JOIN: 2,
    OpKind.APPLY: 2,
    OpKind.UNION_ALL: 2,
    OpKind.UNION: 2,
    OpKind.INTERSECT: 2,
    OpKind.EXCEPT: 2,
}


def synthesize_bindings(
    rule: Rule,
    workloads: Sequence,
    samples: int = 6,
    seed: int = 0,
    salt: str = "lint",
) -> List[Tuple[TreeContext, LogicalOp]]:
    """Synthesize validated sample bindings for ``rule`` from its pattern.

    The shared binding-synthesis used by the registry lint's liveness check
    and the interaction-graph pass: for every bundled workload, instantiate
    the rule's pattern ``samples`` times with per-index seeded RNGs, keep
    only trees that structurally match the pattern and validate against the
    catalog.  Deterministic for a fixed ``(salt, seed)``.
    """
    hints = merge_hints([rule])
    bindings: List[Tuple[TreeContext, LogicalOp]] = []
    for workload_name, catalog, stats in workloads:
        context = TreeContext(catalog, stats)
        for index in range(samples):
            rng = random.Random(
                f"{salt}:{seed}:{rule.name}:{workload_name}:{index}"
            )
            instantiator = PatternInstantiator(catalog, rng, stats)
            try:
                tree = instantiator.instantiate(rule.pattern, hints)
            except GenerationFailure:
                continue
            except Exception:  # noqa: BLE001 - malformed patterns crash
                continue       # the generator; RL101/RL120 report them
            if not match_structure(tree, rule.pattern):
                continue
            try:
                validate_tree(tree, catalog)
            except ValidationError:
                continue
            bindings.append((context, tree))
    return bindings


def pattern_subsumes(wider: PatternNode, narrower: PatternNode) -> bool:
    """Does every tree matching ``narrower`` also match ``wider``?"""
    if wider.is_generic:
        return True
    if narrower.is_generic:
        return False
    if wider.kind is not narrower.kind:
        return False
    if wider.kind in (OpKind.JOIN, OpKind.APPLY):
        if wider.join_kinds is not None:
            if narrower.join_kinds is None:
                return False
            if not set(narrower.join_kinds) <= set(wider.join_kinds):
                return False
    if len(wider.children) != len(narrower.children):
        # Arity differences make the narrower pattern match trees the wider
        # one cannot (or vice versa); treat as incomparable.
        return False
    return all(
        pattern_subsumes(w, n)
        for w, n in zip(wider.children, narrower.children)
    )


class RegistryLinter:
    """Structural lint over a rule registry."""

    def __init__(
        self,
        registry: RuleRegistry,
        workloads: Optional[Sequence] = None,
        samples_per_workload: int = 6,
        seed: int = 0,
        docs_path: Optional[Path] = None,
    ) -> None:
        from repro.analysis.verify import default_workloads

        self.registry = registry
        self.workloads = list(
            workloads if workloads is not None else default_workloads()
        )
        self.samples = samples_per_workload
        self.seed = seed
        self.docs_path = docs_path

    # ------------------------------------------------------------------ run

    def run(self) -> AnalysisReport:
        report = AnalysisReport()
        for rule in self.registry.all_rules:
            self._lint_pattern(report, rule)
            self._lint_name(report, rule)
            report.count("rules_linted")
        self._lint_duplicates(report)
        for rule in self.registry.all_rules:
            self._lint_rule_liveness(report, rule)
        if self.docs_path is not None:
            self._lint_docs(report)
        return report

    def lint_rule(self, rule: Rule) -> AnalysisReport:
        """Scoped lint of one rule (the admission gate's entry point).

        Runs the structural and liveness checks; the registry-wide
        duplicate and documentation-drift checks need full-registry
        context and are left to :meth:`run`.
        """
        report = AnalysisReport()
        self._lint_pattern(report, rule)
        self._lint_name(report, rule)
        self._lint_rule_liveness(report, rule)
        report.count("rules_linted")
        return report

    # ----------------------------------------------------------- structural

    def _lint_pattern(self, report: AnalysisReport, rule: Rule) -> None:
        for node, path in walk_pattern(rule.pattern):
            if node.is_generic:
                continue
            expected = OP_ARITY.get(node.kind)
            if expected is None:
                report.add(
                    Diagnostic(
                        "RL101",
                        Severity.ERROR,
                        f"pattern node has unknown operator kind {node.kind}",
                        rule=rule.name,
                        location=path,
                    )
                )
            elif len(node.children) != expected:
                report.add(
                    Diagnostic(
                        "RL101",
                        Severity.ERROR,
                        f"pattern node {node.kind.value} has "
                        f"{len(node.children)} children but the operator "
                        f"takes {expected}; the rule can never match",
                        rule=rule.name,
                        location=path,
                    )
                )
        try:
            round_tripped = pattern_from_xml(pattern_to_xml(rule.pattern))
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            report.add(
                Diagnostic(
                    "RL102",
                    Severity.ERROR,
                    f"pattern XML round-trip raised "
                    f"{type(exc).__name__}: {exc}",
                    rule=rule.name,
                )
            )
            return
        if round_tripped != rule.pattern:
            report.add(
                Diagnostic(
                    "RL102",
                    Severity.ERROR,
                    "pattern XML round-trip is lossy: "
                    f"{rule.pattern} became {round_tripped}",
                    rule=rule.name,
                )
            )

    def _lint_name(self, report: AnalysisReport, rule: Rule) -> None:
        if not rule.name or not rule.name.isidentifier():
            report.add(
                Diagnostic(
                    "RL103",
                    Severity.ERROR,
                    f"rule name {rule.name!r} is not a valid identifier",
                    rule=rule.name or type(rule).__name__,
                )
            )

    def _lint_duplicates(self, report: AnalysisReport) -> None:
        rules = self.registry.all_rules
        by_pattern: Dict[str, List[Rule]] = {}
        for rule in rules:
            by_pattern.setdefault(str(rule.pattern), []).append(rule)
        for pattern_str, group in sorted(by_pattern.items()):
            exploration = [r for r in group if r.is_exploration]
            if len(exploration) > 1:
                names = ", ".join(sorted(r.name for r in exploration))
                report.add(
                    Diagnostic(
                        "RL110",
                        Severity.INFO,
                        f"rules {names} share the pattern `{pattern_str}` "
                        "(fine when their preconditions differ)",
                        rule=sorted(r.name for r in exploration)[0],
                    )
                )
        for wider in rules:
            for narrower in rules:
                if wider is narrower:
                    continue
                if wider.is_exploration != narrower.is_exploration:
                    continue
                if str(wider.pattern) == str(narrower.pattern):
                    continue  # exact duplicates reported as RL110
                # A shallow pattern trivially subsumes every deeper one
                # through its generic leaves; only same-shape subsumption
                # (a strictly wider join-kind set) is worth surfacing.
                if wider.pattern.size() != narrower.pattern.size():
                    continue
                if pattern_subsumes(
                    wider.pattern, narrower.pattern
                ) and not wider.pattern.is_generic:
                    report.add(
                        Diagnostic(
                            "RL111",
                            Severity.INFO,
                            f"pattern `{wider.pattern}` subsumes "
                            f"{narrower.name}'s `{narrower.pattern}`",
                            rule=wider.name,
                        )
                    )

    # ------------------------------------------------------------- liveness

    def _lint_rule_liveness(self, report: AnalysisReport, rule: Rule) -> None:
        bindings = self._sample_bindings(rule)
        if not bindings:
            report.add(
                Diagnostic(
                    "RL120",
                    Severity.WARNING,
                    "no binding could be synthesized from the pattern "
                    "against any bundled workload schema; the rule "
                    "may be dead",
                    rule=rule.name,
                )
            )
            return
        passed = 0
        for context, tree in bindings:
            try:
                if rule.precondition(tree, context):
                    passed += 1
            except Exception:  # noqa: BLE001 - verify pass reports SV201
                continue
        if passed == 0:
            report.add(
                Diagnostic(
                    "RL121",
                    Severity.WARNING,
                    f"precondition rejected all {len(bindings)} "
                    "synthesized bindings; the rule may never fire",
                    rule=rule.name,
                )
            )

    def _sample_bindings(
        self, rule: Rule
    ) -> List[Tuple[TreeContext, LogicalOp]]:
        return synthesize_bindings(
            rule, self.workloads, self.samples, self.seed, salt="lint"
        )

    # ----------------------------------------------------------------- docs

    def _lint_docs(self, report: AnalysisReport) -> None:
        if not self.docs_path.exists():
            report.add(
                Diagnostic(
                    "RL130",
                    Severity.WARNING,
                    f"rule catalog {self.docs_path} does not exist "
                    "(run tools/generate_rule_docs.py)",
                )
            )
            return
        text = self.docs_path.read_text()
        documented = _parse_rule_docs(text)
        registry_names = {rule.name for rule in self.registry.all_rules}
        for rule in self.registry.all_rules:
            entry = documented.get(rule.name)
            if entry is None:
                report.add(
                    Diagnostic(
                        "RL130",
                        Severity.WARNING,
                        f"rule is missing from {self.docs_path.name} "
                        "(run tools/generate_rule_docs.py)",
                        rule=rule.name,
                    )
                )
                continue
            if entry != str(rule.pattern):
                report.add(
                    Diagnostic(
                        "RL132",
                        Severity.WARNING,
                        f"documented pattern `{entry}` is stale; the "
                        f"registry has `{rule.pattern}` "
                        "(run tools/generate_rule_docs.py)",
                        rule=rule.name,
                    )
                )
        for name in sorted(set(documented) - registry_names):
            report.add(
                Diagnostic(
                    "RL131",
                    Severity.WARNING,
                    f"{self.docs_path.name} documents {name!r}, which is "
                    "not in the registry (run tools/generate_rule_docs.py)",
                    rule=name,
                )
            )


_HEADING = re.compile(r"^### (\w+)\s*$")
_PATTERN_LINE = re.compile(r"^- pattern: `(.+)`\s*$")


def _parse_rule_docs(text: str) -> Dict[str, Optional[str]]:
    """Map documented rule name -> documented pattern string (or None)."""
    documented: Dict[str, Optional[str]] = {}
    current: Optional[str] = None
    for line in text.splitlines():
        heading = _HEADING.match(line)
        if heading:
            current = heading.group(1)
            documented[current] = None
            continue
        pattern = _PATTERN_LINE.match(line)
        if pattern and current is not None and documented[current] is None:
            documented[current] = pattern.group(1)
    return documented
