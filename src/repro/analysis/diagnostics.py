"""The diagnostic model shared by all static-analysis passes.

Every pass (registry lint, substitution verification, plan sanitizing)
reports findings as :class:`Diagnostic` records -- a stable code, a
severity, the rule or plan location the finding anchors to, and a
human-readable message.  :class:`AnalysisReport` aggregates diagnostics
across passes and renders them for humans (``to_text``) or machines
(``to_json``).

Severity policy (documented in ``docs/ANALYSIS.md``):

* **ERROR** -- the rule or plan is provably wrong: an invalid tree, a
  schema change, a lost derived property, a provably empty rewrite.  The
  clean seed registry must report zero errors.
* **WARNING** -- likely a defect but with a sampling or drift caveat
  (dead patterns, never-passing preconditions, stale documentation).
* **INFO** -- observations that are normal in a healthy registry
  (duplicate structural patterns distinguished by preconditions, large
  but plausible estimate drift).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


class Severity(enum.Enum):
    """Diagnostic severity, ordered ERROR > WARNING > INFO."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def at_least(self, other: "Severity") -> bool:
        return self.rank >= other.rank


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding."""

    code: str
    severity: Severity
    message: str
    #: Name of the rule the finding is about (None for plan-level findings).
    rule: Optional[str] = None
    #: Free-form location: a pattern position, binding description, plan
    #: node, source line, or documentation anchor.
    location: Optional[str] = None
    #: One-line remediation suggestion (set by passes whose findings have a
    #: mechanical fix, e.g. the implementation AST lint).
    hint: Optional[str] = None

    def __str__(self) -> str:
        where = self.rule or "-"
        if self.location:
            where = f"{where} @ {self.location}"
        text = f"{self.severity.value.upper()} {self.code} [{where}] {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "rule": self.rule,
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class AnalysisReport:
    """Aggregated findings of one or more analysis passes."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Work counters per pass, e.g. {"rules_linted": 35, "bindings": 412}.
    counters: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------- mutation

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Sequence[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def count(self, key: str, amount: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount

    def merge(self, other: "AnalysisReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        for key, value in other.counters.items():
            self.count(key, value)

    # -------------------------------------------------------------- queries

    def with_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.with_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.with_severity(Severity.WARNING)

    @property
    def infos(self) -> List[Diagnostic]:
        return self.with_severity(Severity.INFO)

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def for_rule(self, rule_name: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule_name]

    def at_or_above(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity.at_least(severity)]

    # ------------------------------------------------------------ rendering

    def summary(self) -> str:
        return (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info"
        )

    def to_text(self) -> str:
        """Human-readable report, most severe findings first."""
        lines: List[str] = []
        ordered = sorted(
            self.diagnostics,
            key=lambda d: (-d.severity.rank, d.code, d.rule or ""),
        )
        for diagnostic in ordered:
            lines.append(str(diagnostic))
        if self.counters:
            checked = ", ".join(
                f"{key}={value}" for key, value in sorted(self.counters.items())
            )
            lines.append(f"-- {checked}")
        lines.append(f"-- {self.summary()}")
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "counters": dict(sorted(self.counters.items())),
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "infos": len(self.infos),
            },
        }
        return json.dumps(payload, indent=2, sort_keys=False)
