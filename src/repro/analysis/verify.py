"""Pass 2: symbolic substitution verification.

For every rule in the registry the verifier synthesizes minimal bindings
from the rule's *own* pattern (reusing the pattern-based generator from
:mod:`repro.testing.pattern_gen`), applies the substitution to the plain
tree, and statically checks the result -- no data, no execution:

* the substitute is a valid logical tree (``validate_tree``);
* it produces exactly the binding's output columns (as a set of column
  ids: memo groups are order-insensitive, e.g. JoinCommutativity legally
  swaps column order);
* every derived unique key of the binding is still provable on the
  substitute, and every derived non-NULL column stays non-NULL;
* the sound row-count bounds of binding and substitute overlap, and the
  substitute is not provably empty unless the binding is.

Random sampling alone would miss property-breaking rewrites whose trigger
inputs are rare, so each sampled binding is augmented with deterministic
*adversarial variants*: every join kind the pattern admits, strict
self-comparisons and ``IS NULL`` filters on each visible join column, and
key-destroying projections under Distinct.  These are exactly the inputs
that separate e.g. ``DistinctRemoveOnKey`` from its key-check-free buggy
variant (see ``repro.rules.faults``).

Implementation rules are checked shallowly: the substitution must yield
physical operators with consistent ordering requirements and a
non-negative finite local cost.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.bounds import BoundsDeriver
from repro.analysis.context import TreeContext
from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.catalog.schema import Catalog
from repro.catalog.stats import StatsRepository
from repro.expr.expressions import (
    TRUE,
    ColumnRef,
    Comparison,
    ComparisonOp,
    IsNull,
)
from repro.logical.operators import (
    Distinct,
    Join,
    JoinKind,
    LogicalOp,
    OpKind,
    Project,
    Select,
)
from repro.logical.validate import ValidationError, validate_tree
from repro.physical.cost import local_cost
from repro.physical.operators import PhysicalOp
from repro.rules.framework import PatternNode, Rule, match_structure
from repro.rules.registry import RuleRegistry
from repro.testing.builders import GenerationFailure
from repro.testing.pattern_gen import PatternInstantiator, merge_hints

#: One bundled analysis workload: (name, catalog, statistics).
Workload = Tuple[str, Catalog, StatsRepository]

#: Ratio beyond which binding/substitute cardinality estimates are reported
#: as informational drift.  Estimates legitimately differ across shapes, so
#: the bar is deliberately high.
ESTIMATE_DRIFT_RATIO = 100.0

#: Cap on adversarial variants derived from one sampled binding.
MAX_VARIANTS_PER_BINDING = 12

#: Operators whose output is duplicate-free *by definition* (rather than by
#: inheritance from input keys).  See the SV204 check.
_DEFINITIONAL_KEY_ROOTS = frozenset(
    {
        OpKind.DISTINCT,
        OpKind.GB_AGG,
        OpKind.UNION,
        OpKind.INTERSECT,
        OpKind.EXCEPT,
    }
)


def default_workloads(seed: int = 1) -> List[Workload]:
    """The bundled schemas the analyzer verifies rules against."""
    from repro.workloads import star_database, tpch_database

    tpch = tpch_database(seed=seed)
    star = star_database(seed=seed)
    return [
        ("tpch", tpch.catalog, tpch.stats_repository()),
        ("star", star.catalog, star.stats_repository()),
    ]


class SubstitutionVerifier:
    """Verifies every registry rule's substitution symbolically."""

    def __init__(
        self,
        registry: RuleRegistry,
        workloads: Optional[Sequence[Workload]] = None,
        samples_per_workload: int = 6,
        seed: int = 0,
    ) -> None:
        self.registry = registry
        self.workloads = list(
            workloads if workloads is not None else default_workloads()
        )
        self.samples = samples_per_workload
        self.seed = seed
        self._contexts: Dict[str, TreeContext] = {
            name: TreeContext(catalog, stats)
            for name, catalog, stats in self.workloads
        }

    # ------------------------------------------------------------------ run

    def run(self) -> AnalysisReport:
        report = AnalysisReport()
        for rule in self.registry.all_rules:
            report.merge(self.verify_rule(rule))
            report.count("rules_verified")
        return report

    def verify_rule(self, rule: Rule) -> AnalysisReport:
        report = AnalysisReport()
        seen_codes = set()

        def emit(code, severity, message, location=None):
            if (code, rule.name) in seen_codes:
                return
            seen_codes.add((code, rule.name))
            report.add(
                Diagnostic(
                    code=code,
                    severity=severity,
                    message=message,
                    rule=rule.name,
                    location=location,
                )
            )

        bindings = self._synthesize_bindings(rule)
        checked = 0
        for workload_name, tree in bindings:
            ctx = self._contexts[workload_name]
            try:
                accepted = rule.precondition(tree, ctx)
            except Exception as exc:  # noqa: BLE001 - any crash is a finding
                emit(
                    "SV201",
                    Severity.ERROR,
                    f"precondition raised {type(exc).__name__}: {exc}",
                    location=f"{workload_name}: {tree.describe()}",
                )
                continue
            if not accepted:
                continue
            checked += 1
            report.count("bindings_checked")
            try:
                substitutes = list(rule.substitute(tree, ctx))
            except Exception as exc:  # noqa: BLE001
                emit(
                    "SV201",
                    Severity.ERROR,
                    f"substitution raised {type(exc).__name__}: {exc}",
                    location=f"{workload_name}: {tree.describe()}",
                )
                continue
            for substitute in substitutes:
                location = f"{workload_name}: {tree.describe()}"
                if rule.is_exploration:
                    self._check_logical(
                        emit, ctx, tree, substitute, location
                    )
                else:
                    self._check_physical(emit, substitute, location)
        if not bindings:
            emit(
                "SV200",
                Severity.INFO,
                "no binding could be synthesized from the pattern "
                "(see the registry lint's dead-rule check)",
            )
        elif checked == 0:
            emit(
                "SV200",
                Severity.INFO,
                f"none of {len(bindings)} synthesized bindings passed the "
                "precondition; substitution not verified",
            )
        return report

    # -------------------------------------------------------------- checks

    def _check_logical(self, emit, ctx, binding, substitute, location):
        if not isinstance(substitute, LogicalOp):
            emit(
                "SV202",
                Severity.ERROR,
                f"substitution yielded {type(substitute).__name__}, "
                "not a logical operator",
                location,
            )
            return
        try:
            validate_tree(substitute, ctx.catalog)
        except ValidationError as exc:
            emit(
                "SV202",
                Severity.ERROR,
                f"substitute fails validation: {exc}",
                location,
            )
            return

        bind_props = ctx.props(binding)
        sub_props = ctx.props(substitute)

        if bind_props.column_ids != sub_props.column_ids:
            missing = bind_props.column_ids - sub_props.column_ids
            extra = sub_props.column_ids - bind_props.column_ids
            emit(
                "SV203",
                Severity.ERROR,
                "substitute changes the output schema "
                f"(missing column ids {sorted(missing)}, "
                f"extra {sorted(extra)})",
                location,
            )
            return

        # Key preservation is only checked when the binding's root operator
        # *definitionally* establishes uniqueness (Distinct, GbAgg, UNION,
        # INTERSECT, EXCEPT).  Inherited keys are derived conservatively, so
        # their provability legitimately varies across equivalent shapes
        # (join associativity, anti-join -> outer-join-filter); definitional
        # duplicate-freeness at the match root must always survive.
        if (
            binding.kind in _DEFINITIONAL_KEY_ROOTS
            and bind_props.has_key(bind_props.column_ids)
            and not sub_props.has_key(sub_props.column_ids)
        ):
            emit(
                "SV204",
                Severity.ERROR,
                "substitute loses the binding's duplicate-free guarantee: "
                "the rewrite may introduce duplicate rows",
                location,
            )

        lost_non_null = bind_props.non_null - sub_props.non_null
        if lost_non_null:
            names = sorted(c.qualified_name for c in lost_non_null)
            emit(
                "SV205",
                Severity.ERROR,
                "substitute loses derived non-NULL columns "
                f"{names}: the rewrite may introduce NULLs",
                location,
            )

        deriver = BoundsDeriver(ctx)
        bind_bounds = deriver.derive(binding)
        sub_bounds = deriver.derive(substitute)
        if sub_bounds.provably_empty and not bind_bounds.provably_empty:
            emit(
                "SV206",
                Severity.ERROR,
                "substitute is provably empty (contradictory predicate) "
                "while the binding is not; the rewrite drops rows",
                location,
            )
        elif not sub_bounds.overlaps(bind_bounds):
            emit(
                "SV207",
                Severity.ERROR,
                "substitute row-count bounds "
                f"{sub_bounds} are disjoint from the binding's "
                f"{bind_bounds}",
                location,
            )

        bind_rows = max(ctx.estimate(binding).rows, 1.0)
        sub_rows = max(ctx.estimate(substitute).rows, 1.0)
        ratio = max(bind_rows, sub_rows) / min(bind_rows, sub_rows)
        if ratio > ESTIMATE_DRIFT_RATIO:
            emit(
                "SV208",
                Severity.INFO,
                f"cardinality estimates drift {ratio:.0f}x between binding "
                f"({bind_rows:.0f} rows) and substitute ({sub_rows:.0f})",
                location,
            )

    def _check_physical(self, emit, substitute, location):
        if not isinstance(substitute, PhysicalOp):
            emit(
                "SV210",
                Severity.ERROR,
                f"implementation rule yielded {type(substitute).__name__}, "
                "not a physical operator",
                location,
            )
            return
        requirements = substitute.required_child_orderings()
        if len(requirements) != len(substitute.children):
            emit(
                "SV211",
                Severity.ERROR,
                f"required_child_orderings() returned {len(requirements)} "
                f"entries for {len(substitute.children)} children",
                location,
            )
        try:
            cost = local_cost(
                substitute,
                tuple(10.0 for _ in substitute.children),
                10.0,
            )
        except Exception as exc:  # noqa: BLE001
            emit(
                "SV212",
                Severity.ERROR,
                f"cost model rejected the operator: {exc}",
                location,
            )
            return
        if not cost >= 0.0 or cost != cost or cost == float("inf"):
            emit(
                "SV212",
                Severity.ERROR,
                f"operator has invalid local cost {cost!r}",
                location,
            )

    # ----------------------------------------------------------- bindings

    def _synthesize_bindings(
        self, rule: Rule
    ) -> List[Tuple[str, LogicalOp]]:
        hints = merge_hints([rule])
        sampled: List[Tuple[str, LogicalOp]] = []
        for workload_name, catalog, stats in self.workloads:
            for index in range(self.samples):
                rng = random.Random(
                    f"{self.seed}:{rule.name}:{workload_name}:{index}"
                )
                instantiator = PatternInstantiator(catalog, rng, stats)
                try:
                    tree = instantiator.instantiate(rule.pattern, hints)
                except GenerationFailure:
                    continue
                except Exception:  # noqa: BLE001 - malformed patterns crash
                    continue       # the generator; the lint reports them
                if not match_structure(tree, rule.pattern):
                    continue
                try:
                    validate_tree(tree, catalog)
                except ValidationError:
                    continue
                sampled.append((workload_name, tree))

        bindings = list(sampled)
        for workload_name, tree in sampled:
            ctx = self._contexts[workload_name]
            for variant in self._adversarial_variants(tree, rule.pattern, ctx):
                if not match_structure(variant, rule.pattern):
                    continue
                try:
                    validate_tree(variant, ctx.catalog)
                except ValidationError:
                    continue
                bindings.append((workload_name, variant))
        return bindings

    # ------------------------------------------------- adversarial variants

    def _adversarial_variants(
        self, tree: LogicalOp, pattern: PatternNode, ctx: TreeContext
    ) -> Iterable[LogicalOp]:
        variants: List[LogicalOp] = []
        if isinstance(tree, Select) and isinstance(tree.child, Join):
            variants.extend(
                self._select_over_join_variants(tree, pattern, ctx)
            )
        if isinstance(tree, Distinct):
            variant = self._keyless_distinct_variant(tree, ctx)
            if variant is not None:
                variants.append(variant)
        if isinstance(tree, Join):
            variants.extend(self._join_kind_variants(tree, pattern))
        return variants[:MAX_VARIANTS_PER_BINDING]

    def _pattern_join_kinds(
        self, node: PatternNode, current: JoinKind
    ) -> Tuple[JoinKind, ...]:
        if (
            not node.is_generic
            and node.kind is OpKind.JOIN
            and node.join_kinds
        ):
            return node.join_kinds
        return (current,)

    def _select_over_join_variants(
        self, tree: Select, pattern: PatternNode, ctx: TreeContext
    ) -> Iterable[LogicalOp]:
        join: Join = tree.child
        child_pattern = pattern.children[0] if pattern.children else None
        kinds = self._pattern_join_kinds(
            child_pattern, join.join_kind
        ) if child_pattern is not None else (join.join_kind,)
        left_cols = ctx.props(join.left).columns
        right_cols = ctx.props(join.right).columns
        for kind in kinds:
            if kind is JoinKind.CROSS and join.predicate != TRUE:
                continue
            if kind is not JoinKind.CROSS and join.predicate == TRUE:
                continue
            new_join = Join(kind, join.left, join.right, join.predicate)
            # Strict self-comparisons (always TRUE on non-NULL input, but
            # null-rejecting) expose lost non-NULL guarantees; IS NULL
            # filters expose rewrites that contradict derived non-NULL
            # columns (e.g. outer join -> inner join without the check).
            probe_cols = list(left_cols[:2])
            if kind.preserves_right_columns:
                probe_cols.extend(right_cols[:4])
            for column in probe_cols:
                ref = ColumnRef(column)
                yield Select(
                    new_join, Comparison(ComparisonOp.GE, ref, ref)
                )
                yield Select(new_join, IsNull(ref))

    def _keyless_distinct_variant(
        self, tree: Distinct, ctx: TreeContext
    ) -> Optional[LogicalOp]:
        """Distinct over a projection that destroys every derived key."""
        child = tree.child
        props = ctx.props(child)
        if not props.keys:
            return None  # the sampled binding is already key-free
        key_member_ids = set()
        for key in props.keys:
            key_member_ids.update(key)
        keyless = [
            column
            for column in props.columns
            if column.cid not in key_member_ids
        ]
        if not keyless:
            return None
        outputs = tuple(
            (column, ColumnRef(column)) for column in keyless[:3]
        )
        return Distinct(Project(child, outputs))

    def _join_kind_variants(
        self, tree: Join, pattern: PatternNode
    ) -> Iterable[LogicalOp]:
        for kind in self._pattern_join_kinds(pattern, tree.join_kind):
            if kind is tree.join_kind:
                continue
            if kind is JoinKind.CROSS and tree.predicate != TRUE:
                continue
            if kind is not JoinKind.CROSS and tree.predicate == TRUE:
                continue
            yield Join(kind, tree.left, tree.right, tree.predicate)
