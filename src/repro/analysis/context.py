"""A tree-mode :class:`RuleContext` for static analysis.

Rule preconditions and substitutions were written against the optimizer's
memo-backed context; the analyzer applies rules to plain logical trees
(no memo, no execution), so it supplies the same services -- derived
properties and cardinality estimates -- straight from the deriver and
estimator, memoized per node.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.catalog.schema import Catalog
from repro.catalog.stats import StatsRepository
from repro.logical.cardinality import CardinalityEstimator, RelEstimate
from repro.logical.operators import LogicalOp
from repro.logical.properties import LogicalProps, PropertyDeriver
from repro.rules.framework import RuleContext


class TreeContext(RuleContext):
    """Rule services over plain logical trees (no memo involved)."""

    def __init__(self, catalog: Catalog, stats: StatsRepository) -> None:
        self._catalog = catalog
        self.deriver = PropertyDeriver(catalog)
        self.estimator = CardinalityEstimator(catalog, stats)
        # Keyed by id(); the node is retained in the value so a recycled
        # id can never alias a live entry.
        self._props: Dict[int, Tuple[LogicalOp, LogicalProps]] = {}
        self._estimates: Dict[int, Tuple[LogicalOp, RelEstimate]] = {}

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    def props(self, node: LogicalOp) -> LogicalProps:
        cached = self._props.get(id(node))
        if cached is not None and cached[0] is node:
            return cached[1]
        child_props = tuple(self.props(child) for child in node.children)
        props = self.deriver.derive(node, child_props)
        self._props[id(node)] = (node, props)
        return props

    def estimate(self, node: LogicalOp) -> RelEstimate:
        cached = self._estimates.get(id(node))
        if cached is not None and cached[0] is node:
            return cached[1]
        children = tuple(self.estimate(child) for child in node.children)
        estimate = self.estimator.estimate(node, children)
        self._estimates[id(node)] = (node, estimate)
        return estimate
