"""Static analysis of the rule registry and optimizer plans.

Three passes over a shared diagnostic model (see ``docs/ANALYSIS.md``):

1. registry lint (:mod:`repro.analysis.lint`) -- pattern well-formedness,
   duplicate/subsumed patterns, dead rules, documentation drift;
2. symbolic substitution verification (:mod:`repro.analysis.verify`) --
   synthesize bindings from each rule's pattern, apply the substitution,
   and check schema, keys, non-null columns and row bounds statically;
3. the plan sanitizer (:mod:`repro.analysis.sanitize`) -- invariant checks
   wired into the optimizer behind ``OptimizerConfig.sanitize_plans``.
"""

from repro.analysis.bounds import BoundsDeriver, RowBounds
from repro.analysis.context import TreeContext
from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analysis.lint import RegistryLinter, pattern_subsumes
from repro.analysis.sanitize import (
    MonotonicityGuard,
    PlanSanitizer,
    PlanSanityError,
)
from repro.analysis.verify import SubstitutionVerifier, default_workloads

__all__ = [
    "AnalysisReport",
    "BoundsDeriver",
    "Diagnostic",
    "MonotonicityGuard",
    "PlanSanitizer",
    "PlanSanityError",
    "RegistryLinter",
    "RowBounds",
    "Severity",
    "SubstitutionVerifier",
    "TreeContext",
    "default_workloads",
    "pattern_subsumes",
]
