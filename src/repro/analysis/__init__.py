"""Static analysis of the rule registry and optimizer plans.

Six passes over a shared diagnostic model (see ``docs/ANALYSIS.md``):

1. registry lint (:mod:`repro.analysis.lint`) -- pattern well-formedness,
   duplicate/subsumed patterns, dead rules, documentation drift;
2. symbolic substitution verification (:mod:`repro.analysis.verify`) --
   synthesize bindings from each rule's pattern, apply the substitution,
   and check schema, keys, non-null columns and row bounds statically;
3. the plan sanitizer (:mod:`repro.analysis.sanitize`) -- invariant checks
   wired into the optimizer behind ``OptimizerConfig.sanitize_plans``;
4. the rule-interaction graph (:mod:`repro.analysis.interact`) -- which
   rule's outputs feed which rule's pattern, with cycle/commuting/
   redundancy/blind-spot findings over the graph;
5. the implementation AST lint (:mod:`repro.analysis.astlint`) -- drift
   between a rule's declared pattern and its Python implementation;
6. the admission gate (:mod:`repro.analysis.gate`) -- RL+SV+AL+IG plus a
   sampled dynamic differential check, composed into one pass/fail
   verdict per candidate rule.
"""

from repro.analysis.astlint import AstLinter
from repro.analysis.bounds import BoundsDeriver, RowBounds
from repro.analysis.context import TreeContext
from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analysis.gate import GateVerdict, RuleGate
from repro.analysis.interact import (
    InteractionAnalyzer,
    InteractionEdge,
    InteractionGraph,
    interaction_markdown,
)
from repro.analysis.lint import (
    RegistryLinter,
    pattern_subsumes,
    synthesize_bindings,
)
from repro.analysis.sanitize import (
    MonotonicityGuard,
    PlanSanitizer,
    PlanSanityError,
)
from repro.analysis.verify import SubstitutionVerifier, default_workloads

__all__ = [
    "AnalysisReport",
    "AstLinter",
    "BoundsDeriver",
    "Diagnostic",
    "GateVerdict",
    "InteractionAnalyzer",
    "InteractionEdge",
    "InteractionGraph",
    "MonotonicityGuard",
    "PlanSanitizer",
    "PlanSanityError",
    "RegistryLinter",
    "RowBounds",
    "RuleGate",
    "Severity",
    "SubstitutionVerifier",
    "TreeContext",
    "default_workloads",
    "interaction_markdown",
    "pattern_subsumes",
    "synthesize_bindings",
]
