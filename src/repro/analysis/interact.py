"""Pass 4: rule-interaction graph (IG4xx).

The paper's central object is the *interaction* between transformation
rules -- one rule's output feeding another's pattern (Section 7's derived
interactions).  This pass computes that relation statically, without an
optimizer run: for every ordered exploration-rule pair ``(A, B)`` it runs
A's substitution over synthesized bindings (the shared binding synthesis
from :mod:`repro.analysis.lint`) and unifies the outputs against B's
:class:`PatternNode` tree.

An edge ``A -> B`` is recorded when B's pattern matches at a node A's
substitution *created* (a subtree whose structural fingerprint does not
occur in the binding -- the static analogue of "new to the memo").  Two
match strengths are distinguished:

* **confirmed** -- B's pattern matches the created subtree literally and
  B's precondition accepts it: the interaction is realizable on a concrete
  witness tree, which is recorded;
* **structural** -- the interaction is realizable only through memo
  equivalence.  B's pattern *root* matches a created node; deeper pattern
  levels are treated as wildcards, because during optimization the
  consumer's pattern matches against memo bindings, and the child groups
  gain further equivalent expressions as exploration proceeds.  A rule
  that yields a binding subtree verbatim triggers group absorption (the
  memo copies the absorbed group's expressions and credits them to the
  rule), so such outputs yield structural edges to *every* rule.
  Dynamically observed interactions are a subset of confirmed +
  structural edges.

Over the graph the pass reports:

* **IG400** (INFO) -- no binding could be synthesized, so the rule's row
  and column of the graph are incomplete;
* **IG401** (INFO) -- rewrite cycles / termination hazards: confirmed
  self-loops (a rule re-fires on its own output), confirmed inverse pairs
  (applying A then B at the root restores the original tree, with the
  witness recorded), and strongly connected components of the confirmed
  graph.  Benign under memo deduplication, which is exactly why they are
  worth documenting;
* **IG402** (INFO) -- mutually-enabling (candidate commuting) pairs:
  ``A -> B`` and ``B -> A`` both confirmed;
* **IG403** (WARNING) -- composition-redundant rule: every substitution
  output of every sampled binding is reproducible by a chain (length <= 2)
  of *other* rules applied at the binding root;
* **IG404** (WARNING) -- generator blind spot: a confirmed interaction
  whose composite patterns (:func:`repro.testing.composition
  .compose_patterns`) cannot be instantiated against any bundled workload,
  so the pattern-based pair generator can never co-exercise the pair.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.context import TreeContext
from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analysis.lint import synthesize_bindings
from repro.logical.operators import LogicalOp
from repro.logical.validate import ValidationError, validate_tree
from repro.rules.framework import Rule, match_structure
from repro.rules.registry import RuleRegistry
from repro.testing.builders import GenerationFailure
from repro.testing.composition import compose_patterns
from repro.testing.pattern_gen import PatternInstantiator, merge_hints

#: Composite patterns tried per confirmed edge in the blind-spot check.
MAX_COMPOSITES = 3

#: Instantiation attempts per composite pattern per workload.
BLIND_SPOT_ATTEMPTS = 2

#: Depth cap for witness-tree rendering.
_RENDER_DEPTH = 5

_HINTS = {
    "IG400": "extend generation_hints or the bundled workloads so the "
    "pattern can be instantiated",
    "IG401": "benign under memo deduplication; document the cycle and keep "
    "substitutes interned rather than re-expanded",
    "IG402": "check whether the pair commutes on shared bindings; if so, "
    "one direction may be droppable as a normalization",
    "IG403": "consider dropping the rule or demoting it to a rewrite "
    "normalization; its effect is reachable via other rules",
    "IG404": "add generation_hints or a composite pattern so the pair "
    "generator can co-exercise the pair; until then only random "
    "generation can reach it",
}


def render_tree(op: LogicalOp, depth: int = _RENDER_DEPTH) -> str:
    """Compact one-line rendering of a tree, used for witness strings."""
    if depth <= 0:
        return "..."
    if not op.children:
        return op.describe()
    rendered = ", ".join(
        render_tree(child, depth - 1)
        if isinstance(child, LogicalOp)
        else "?"
        for child in op.children
    )
    return f"{op.describe()}({rendered})"


@dataclass(frozen=True)
class InteractionEdge:
    """One ordered rule interaction: ``producer``'s output can match
    ``consumer``'s pattern."""

    producer: str
    consumer: str
    #: ``confirmed`` (literal match + precondition accepted, witness
    #: recorded) or ``structural`` (realizable only via memo equivalence).
    kind: str
    witness: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "producer": self.producer,
            "consumer": self.consumer,
            "kind": self.kind,
            "witness": self.witness,
        }


@dataclass
class InteractionGraph:
    """The ~35x35 rule-interaction relation with export helpers."""

    rules: List[str]
    edges: List[InteractionEdge]
    cycles: List[List[str]]
    parameters: Dict[str, object]

    def __post_init__(self) -> None:
        self._by_pair = {
            (edge.producer, edge.consumer): edge for edge in self.edges
        }

    # -------------------------------------------------------------- queries

    def edge(self, producer: str, consumer: str) -> Optional[InteractionEdge]:
        return self._by_pair.get((producer, consumer))

    def has_edge(self, producer: str, consumer: str) -> bool:
        return (producer, consumer) in self._by_pair

    @property
    def confirmed_edges(self) -> List[InteractionEdge]:
        return [e for e in self.edges if e.kind == "confirmed"]

    def successors(self, producer: str) -> List[str]:
        return [e.consumer for e in self.edges if e.producer == producer]

    # ------------------------------------------------------------ rendering

    def to_json_dict(self) -> Dict[str, object]:
        confirmed = len(self.confirmed_edges)
        return {
            "parameters": dict(sorted(self.parameters.items())),
            "rules": list(self.rules),
            "edges": [edge.to_dict() for edge in self.edges],
            "cycles": [list(cycle) for cycle in self.cycles],
            "counts": {
                "rules": len(self.rules),
                "edges": len(self.edges),
                "confirmed": confirmed,
                "structural": len(self.edges) - confirmed,
            },
        }

    def to_json(self) -> str:
        """Deterministic JSON export (byte-identical across processes)."""
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True)

    def to_dot(self, confirmed_only: bool = True) -> str:
        """Graphviz DOT export; confirmed edges solid, structural dashed."""
        lines = [
            "// Generated by repro.analysis.interact -- do not edit.",
            "digraph rule_interactions {",
            "  rankdir=LR;",
            "  node [shape=box, fontsize=10];",
        ]
        for name in self.rules:
            lines.append(f'  "{name}";')
        for edge in self.edges:
            if edge.kind != "confirmed" and confirmed_only:
                continue
            style = "solid" if edge.kind == "confirmed" else "dashed"
            lines.append(
                f'  "{edge.producer}" -> "{edge.consumer}" [style={style}];'
            )
        lines.append("}")
        return "\n".join(lines) + "\n"


class InteractionAnalyzer:
    """Builds the interaction graph and derives the IG4xx diagnostics."""

    def __init__(
        self,
        registry: RuleRegistry,
        workloads: Optional[Sequence] = None,
        samples_per_workload: int = 4,
        seed: int = 0,
    ) -> None:
        from repro.analysis.verify import default_workloads

        self.registry = registry
        self.workloads = list(
            workloads if workloads is not None else default_workloads()
        )
        self.samples = samples_per_workload
        self.seed = seed
        self.rules: List[Rule] = list(registry.exploration_rules)
        self._by_name = {rule.name: rule for rule in self.rules}
        #: rule name -> list of (workload, ctx, binding, input_fps, outputs)
        self._products: Dict[str, List[tuple]] = {}
        self._graph: Optional[InteractionGraph] = None

    # ------------------------------------------------------------------ run

    def run(self) -> AnalysisReport:
        """Build the graph and report the IG4xx findings."""
        report = AnalysisReport()
        graph = self.build_graph()
        report.count("interaction_rules", len(graph.rules))
        report.count("interaction_edges", len(graph.edges))
        report.count("interaction_edges_confirmed", len(graph.confirmed_edges))
        for rule in self.rules:
            if not self._rule_products(rule):
                self._emit(
                    report,
                    "IG400",
                    Severity.INFO,
                    "no binding could be synthesized from the pattern; the "
                    "rule's interaction-graph row is incomplete",
                    rule=rule.name,
                )
            report.count("interaction_rules_analyzed")
        self._report_cycles(report, graph)
        self._report_commuting(report, graph)
        self._report_redundancy(report)
        self._report_blind_spots(report, graph)
        return report

    def rule_report(self, rule: Rule) -> AnalysisReport:
        """Scoped IG findings for one rule (the admission gate's entry
        point): the rule's producer edges, self-loop termination hazard,
        and composition redundancy.  Consumer-side analyses (commuting
        pairs, generator blind spots) need the whole graph and are left
        to :meth:`run`.  ``rule`` must be one of the analyzer's rules.
        """
        report = AnalysisReport()
        if not self._rule_products(rule):
            self._emit(
                report,
                "IG400",
                Severity.INFO,
                "no binding could be synthesized from the pattern; the "
                "rule's interaction-graph row is incomplete",
                rule=rule.name,
            )
            return report
        edges = self.producer_edges(rule)
        report.count("gate_interaction_edges", len(edges))
        for edge in edges:
            if edge.kind == "confirmed" and edge.consumer == rule.name:
                self._emit(
                    report,
                    "IG401",
                    Severity.INFO,
                    "rule can re-fire on its own substitution output "
                    "(self-loop termination hazard)",
                    rule=rule.name,
                    location=edge.witness,
                )
        chains = self._redundancy_chains(rule)
        if chains:
            self._emit(
                report,
                "IG403",
                Severity.WARNING,
                "every sampled substitution output is reproducible by "
                "other rules applied at the binding root (via "
                + ", ".join(chains)
                + "); the rule may be composition-redundant",
                rule=rule.name,
            )
        return report

    def build_graph(self) -> InteractionGraph:
        if self._graph is not None:
            return self._graph
        edges: Dict[Tuple[str, str], InteractionEdge] = {}
        for producer in self.rules:
            for edge in self.producer_edges(producer):
                key = (edge.producer, edge.consumer)
                current = edges.get(key)
                if current is None or (
                    current.kind == "structural" and edge.kind == "confirmed"
                ):
                    edges[key] = edge
        ordered = [edges[key] for key in sorted(edges)]
        confirmed = {
            (e.producer, e.consumer)
            for e in ordered
            if e.kind == "confirmed"
        }
        cycles = _strongly_connected(
            [rule.name for rule in self.rules], confirmed
        )
        self._graph = InteractionGraph(
            rules=[rule.name for rule in self.rules],
            edges=ordered,
            cycles=cycles,
            parameters={
                "samples_per_workload": self.samples,
                "seed": self.seed,
                "workloads": [name for name, _, _ in self.workloads],
            },
        )
        return self._graph

    # ---------------------------------------------------------------- edges

    def producer_edges(self, producer: Rule) -> List[InteractionEdge]:
        """All edges out of ``producer``, strongest match kind per pair."""
        best: Dict[str, InteractionEdge] = {}

        def record(consumer_name: str, kind: str, witness: Optional[str]):
            current = best.get(consumer_name)
            if current is None or (
                current.kind == "structural" and kind == "confirmed"
            ):
                best[consumer_name] = InteractionEdge(
                    producer.name, consumer_name, kind, witness
                )

        for workload, ctx, binding, input_fps, outputs in self._rule_products(
            producer
        ):
            for output in outputs:
                absorbed = output.fingerprint() in input_fps
                if absorbed:
                    # The substitution returned a binding subtree verbatim:
                    # the memo absorbs that subtree's whole group and
                    # credits the copied expressions -- whatever their
                    # shape -- to this rule, so any rule can consume them.
                    for consumer in self.rules:
                        record(consumer.name, "structural", None)
                    match_nodes = [output]
                else:
                    match_nodes = [
                        node
                        for node in output.walk()
                        if node.fingerprint() not in input_fps
                    ]
                for node in match_nodes:
                    for consumer in self.rules:
                        current = best.get(consumer.name)
                        if current is not None and current.kind == "confirmed":
                            continue
                        kind = self._match_kind(node, consumer, ctx)
                        if kind is None:
                            continue
                        witness = None
                        if kind == "confirmed":
                            witness = (
                                f"{workload}: {render_tree(binding)} "
                                f"=[{producer.name}]=> {render_tree(output)}; "
                                f"{consumer.name} matches at "
                                f"{node.describe()}"
                            )
                        record(consumer.name, kind, witness)
        return [best[name] for name in sorted(best)]

    def _match_kind(
        self, node: LogicalOp, consumer: Rule, ctx: TreeContext
    ) -> Optional[str]:
        if match_structure(node, consumer.pattern):
            try:
                accepted = consumer.precondition(node, ctx)
            except Exception:  # noqa: BLE001 - crash reported by SV201
                accepted = False
            if accepted:
                return "confirmed"
        if consumer.pattern.matches_op(node):
            return "structural"
        return None

    # ------------------------------------------------------------- products

    def _rule_products(self, rule: Rule) -> List[tuple]:
        cached = self._products.get(rule.name)
        if cached is not None:
            return cached
        products: List[tuple] = []
        for workload_name, catalog, stats in self.workloads:
            bindings = synthesize_bindings(
                rule,
                [(workload_name, catalog, stats)],
                self.samples,
                self.seed,
                salt="interact",
            )
            for ctx, tree in bindings:
                outputs = self._safe_substitutions(rule, tree, ctx)
                input_fps = {node.fingerprint() for node in tree.walk()}
                products.append(
                    (workload_name, ctx, tree, input_fps, outputs)
                )
        self._products[rule.name] = products
        return products

    @staticmethod
    def _safe_substitutions(
        rule: Rule, tree: LogicalOp, ctx: TreeContext
    ) -> List[LogicalOp]:
        try:
            outputs = rule.substitutions(tree, ctx)
        except Exception:  # noqa: BLE001 - crashes are SV201 findings
            return []
        return [
            output
            for output in outputs
            if isinstance(output, LogicalOp) and output.is_tree()
        ]

    # ---------------------------------------------------------- diagnostics

    def _emit(self, report, code, severity, message, rule, location=None):
        report.add(
            Diagnostic(
                code=code,
                severity=severity,
                message=message,
                rule=rule,
                location=location,
                hint=_HINTS[code],
            )
        )

    def _report_cycles(
        self, report: AnalysisReport, graph: InteractionGraph
    ) -> None:
        for edge in graph.confirmed_edges:
            if edge.producer == edge.consumer:
                self._emit(
                    report,
                    "IG401",
                    Severity.INFO,
                    "rule can re-fire on its own substitution output "
                    "(self-loop termination hazard)",
                    rule=edge.producer,
                    location=edge.witness,
                )
        for producer_name, consumer_name, witness in self._inverse_pairs(
            graph
        ):
            self._emit(
                report,
                "IG401",
                Severity.INFO,
                f"confirmed rewrite cycle: applying {producer_name} then "
                f"{consumer_name} at the root restores the original tree",
                rule=producer_name,
                location=witness,
            )
        for cycle in graph.cycles:
            self._emit(
                report,
                "IG401",
                Severity.INFO,
                "rules form a rewrite cycle (strongly connected in the "
                "confirmed interaction graph): " + " -> ".join(
                    cycle + [cycle[0]]
                ),
                rule=cycle[0],
            )

    def _inverse_pairs(
        self, graph: InteractionGraph
    ) -> List[Tuple[str, str, str]]:
        """Confirmed ``A;B == identity`` pairs with concrete witnesses."""
        found: List[Tuple[str, str, str]] = []
        for edge in graph.confirmed_edges:
            first = self._by_name[edge.producer]
            second = self._by_name[edge.consumer]
            if first.name == second.name:
                continue
            reverse = graph.edge(second.name, first.name)
            if reverse is None or reverse.kind != "confirmed":
                continue
            witness = self._oscillation_witness(first, second)
            if witness is not None:
                found.append((first.name, second.name, witness))
        return found

    def _oscillation_witness(
        self, first: Rule, second: Rule
    ) -> Optional[str]:
        for workload, ctx, tree, _, outputs in self._rule_products(first):
            for output in outputs:
                if not match_structure(output, second.pattern):
                    continue
                for restored in self._safe_substitutions(
                    second, output, ctx
                ):
                    if restored.fingerprint() == tree.fingerprint():
                        return (
                            f"{workload}: {render_tree(tree)} "
                            f"=[{first.name}]=> {render_tree(output)} "
                            f"=[{second.name}]=> original tree"
                        )
        return None

    def _report_commuting(
        self, report: AnalysisReport, graph: InteractionGraph
    ) -> None:
        inverses = {
            (a, b) for a, b, _ in self._inverse_pairs(graph)
        }
        for edge in graph.confirmed_edges:
            a, b = edge.producer, edge.consumer
            if a >= b:
                continue  # report each unordered pair once
            reverse = graph.edge(b, a)
            if reverse is None or reverse.kind != "confirmed":
                continue
            if (a, b) in inverses or (b, a) in inverses:
                continue  # already reported as an IG401 cycle
            self._emit(
                report,
                "IG402",
                Severity.INFO,
                f"{a} and {b} mutually enable each other (each fires on "
                "the other's output): candidate commuting pair",
                rule=a,
                location=edge.witness,
            )

    def _report_redundancy(self, report: AnalysisReport) -> None:
        for rule in self.rules:
            chains = self._redundancy_chains(rule)
            if chains:
                self._emit(
                    report,
                    "IG403",
                    Severity.WARNING,
                    "every sampled substitution output is reproducible by "
                    "other rules applied at the binding root (via "
                    + ", ".join(chains)
                    + "); the rule may be composition-redundant",
                    rule=rule.name,
                )

    def _redundancy_chains(self, rule: Rule) -> Optional[List[str]]:
        """Chains of other rules reproducing every output, or ``None``."""
        others = [r for r in self.rules if r.name != rule.name]
        chains: Set[str] = set()
        any_outputs = False
        for _, ctx, tree, _, outputs in self._rule_products(rule):
            if not outputs:
                continue
            any_outputs = True
            step1: Dict[str, Tuple[str, LogicalOp]] = {}
            for other in others:
                if not match_structure(tree, other.pattern):
                    continue
                for produced in self._safe_substitutions(other, tree, ctx):
                    step1.setdefault(
                        produced.fingerprint(), (other.name, produced)
                    )
            step2: Dict[str, str] = {}
            for fp in sorted(step1):
                name, intermediate = step1[fp]
                for other in others:
                    if not match_structure(intermediate, other.pattern):
                        continue
                    for produced in self._safe_substitutions(
                        other, intermediate, ctx
                    ):
                        step2.setdefault(
                            produced.fingerprint(),
                            f"{name} -> {other.name}",
                        )
            for output in outputs:
                fp = output.fingerprint()
                if fp in step1:
                    chains.add(step1[fp][0])
                elif fp in step2:
                    chains.add(step2[fp])
                else:
                    return None
        if not any_outputs:
            return None
        return sorted(chains)

    def _report_blind_spots(
        self, report: AnalysisReport, graph: InteractionGraph
    ) -> None:
        for edge in graph.confirmed_edges:
            if edge.producer == edge.consumer:
                continue
            if not self._pair_generatable(edge.producer, edge.consumer):
                self._emit(
                    report,
                    "IG404",
                    Severity.WARNING,
                    f"confirmed interaction {edge.producer} -> "
                    f"{edge.consumer} but no composite pattern of the pair "
                    "can be instantiated against any bundled workload: "
                    "the pattern-based generator cannot co-exercise it",
                    rule=edge.producer,
                    location=edge.witness,
                )

    def _pair_generatable(self, producer: str, consumer: str) -> bool:
        first = self._by_name[producer]
        second = self._by_name[consumer]
        hints = merge_hints([first, second])
        composites = compose_patterns(first.pattern, second.pattern)
        for position, composite in enumerate(composites[:MAX_COMPOSITES]):
            for workload_name, catalog, stats in self.workloads:
                for attempt in range(BLIND_SPOT_ATTEMPTS):
                    rng = random.Random(
                        f"interact:blind:{self.seed}:{producer}:{consumer}"
                        f":{workload_name}:{position}:{attempt}"
                    )
                    instantiator = PatternInstantiator(catalog, rng, stats)
                    try:
                        tree = instantiator.instantiate(composite, hints)
                        validate_tree(tree, catalog)
                    except (GenerationFailure, ValidationError):
                        continue
                    except Exception:  # noqa: BLE001 - malformed composite
                        continue
                    return True
        return False


def _strongly_connected(
    nodes: Sequence[str], edges: Set[Tuple[str, str]]
) -> List[List[str]]:
    """Tarjan SCC; returns components of size > 1, each sorted, sorted."""
    graph: Dict[str, List[str]] = {node: [] for node in nodes}
    for producer, consumer in sorted(edges):
        if producer != consumer and producer in graph:
            graph[producer].append(consumer)

    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    components: List[List[str]] = []

    def connect(node: str) -> None:
        index[node] = lowlink[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in graph.get(node, ()):
            if succ not in index:
                connect(succ)
                lowlink[node] = min(lowlink[node], lowlink[succ])
            elif succ in on_stack:
                lowlink[node] = min(lowlink[node], index[succ])
        if lowlink[node] == index[node]:
            component = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            if len(component) > 1:
                components.append(sorted(component))

    for node in nodes:
        if node not in index:
            connect(node)
    return sorted(components)


def interaction_markdown(
    graph: InteractionGraph, report: AnalysisReport
) -> str:
    """Render ``docs/INTERACTIONS.md`` from a graph and its IG findings."""
    lines = [
        "# Rule-interaction graph",
        "",
        "*Generated by `tools/generate_rule_docs.py` from "
        "`repro.analysis.interact` -- do not edit by hand.*",
        "",
        "An edge `A -> B` means a tree produced by A's substitution can "
        "structurally match B's pattern at a node A created.  `confirmed` "
        "edges carry a concrete witness tree (literal match, precondition "
        "accepted); `structural` edges are realizable only through memo "
        "equivalence (the consumer's deeper pattern levels match an "
        "equivalent expression, not the literal subtree).  Dynamically "
        "observed interactions (`OptimizeResult.rule_interactions`) are a "
        "subset of these edges.",
        "",
    ]
    counts = graph.to_json_dict()["counts"]
    lines.extend(
        [
            "## Summary",
            "",
            f"- rules: {counts['rules']}",
            f"- edges: {counts['edges']} "
            f"({counts['confirmed']} confirmed, "
            f"{counts['structural']} structural)",
            f"- confirmed cycles (SCCs): {len(graph.cycles)}",
            "",
        ]
    )
    cycle_diags = [d for d in report.diagnostics if d.code == "IG401"]
    if cycle_diags:
        lines.append("## Cycles and termination hazards (IG401)")
        lines.append("")
        lines.append(
            "All are benign under memo deduplication -- a substitute "
            "already in the memo is not re-explored -- but any rewrite "
            "driver without deduplication must bound its depth."
        )
        lines.append("")
        for diag in cycle_diags:
            lines.append(f"- **{diag.rule}**: {diag.message}")
            if diag.location:
                lines.append(f"  - witness: `{diag.location}`")
        lines.append("")
    commuting = [d for d in report.diagnostics if d.code == "IG402"]
    if commuting:
        lines.append("## Candidate commuting pairs (IG402)")
        lines.append("")
        for diag in commuting:
            lines.append(f"- {diag.message}")
        lines.append("")
    redundant = [d for d in report.diagnostics if d.code == "IG403"]
    if redundant:
        lines.append("## Composition-redundant rules (IG403)")
        lines.append("")
        for diag in redundant:
            lines.append(f"- **{diag.rule}**: {diag.message}")
        lines.append("")
    blind = [d for d in report.diagnostics if d.code == "IG404"]
    if blind:
        lines.append("## Generator blind spots (IG404)")
        lines.append("")
        for diag in blind:
            lines.append(f"- {diag.message}")
        lines.append("")
    lines.append("## Confirmed edges")
    lines.append("")
    lines.append("| producer | consumers |")
    lines.append("| --- | --- |")
    confirmed_by_producer: Dict[str, List[str]] = {}
    for edge in graph.confirmed_edges:
        confirmed_by_producer.setdefault(edge.producer, []).append(
            edge.consumer
        )
    for producer in graph.rules:
        consumers = confirmed_by_producer.get(producer)
        if consumers:
            lines.append(f"| {producer} | {', '.join(consumers)} |")
    lines.append("")
    lines.append(
        "The full graph (including structural edges) is exported as JSON "
        "by `repro analyze --interactions --json`; "
        "`docs/interactions.dot` holds the confirmed subgraph in Graphviz "
        "format."
    )
    lines.append("")
    return "\n".join(lines)
