"""Pass 6: the rule admission gate.

The door through which a candidate rule -- handwritten or discovered by
the ROADMAP's automated rule-discovery pipeline -- enters the registry.
:class:`RuleGate` composes the per-rule entry points of the existing
passes into a single pass/fail verdict with machine-readable reasons:

1. **RL** -- :meth:`RegistryLinter.lint_rule`: pattern arity, XML
   round-trip, naming, liveness;
2. **SV** -- :meth:`SubstitutionVerifier.verify_rule`: the semantic
   property checks over synthesized bindings (schema preservation,
   derived-property loss, provably empty rewrites, ...);
3. **AL** -- :meth:`AstLinter.lint_rule`: implementation drift between
   declared pattern and Python source;
4. **IG** -- :meth:`InteractionAnalyzer.rule_report`: the candidate's
   producer edges, self-loop termination hazard, and composition
   redundancy against the registry it would join;
5. **dynamic** (unless ``static_only``) -- a sampled mutation-style
   differential check via :meth:`MutationCampaign.evaluate_rule`: the
   candidate build must survive the paper's ``Plan(q)`` vs
   ``Plan(q, not R)`` oracle over its own pattern-based suite.

A candidate is **rejected** when any static pass reports an ERROR, or
when the dynamic differential detects it (``KILLED``/``CRASHED``/
``NO_FIRE``).  Warnings are carried in the verdict as advisories but do
not reject on their own -- the seed registry's own rules must all pass
the gate, and sampling-caveated findings (dead patterns, redundancy)
need human judgment, not a hard door.

The gate is deliberately cheap on the static side (a few hundred
milliseconds per rule); the dynamic stage stands up a fresh memory-only
plan service per candidate and dominates the cost, which is why
``static_only`` exists for bulk sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.astlint import AstLinter
from repro.analysis.diagnostics import AnalysisReport, Severity
from repro.analysis.interact import InteractionAnalyzer
from repro.analysis.lint import RegistryLinter
from repro.analysis.verify import SubstitutionVerifier, default_workloads
from repro.rules.framework import Rule
from repro.rules.registry import RuleRegistry

#: Calibrated dynamic-check configuration -- the smallest setup at which
#: the kill-matrix campaign detects all four handwritten faults (the
#: same calibration ``tools/bench_smoke.py`` tracks): TPC-H seed 1,
#: three generation seeds unioned, a pool of 8 queries.
DYNAMIC_SEEDS = (11, 23, 37)
DYNAMIC_POOL = 8
DYNAMIC_K = 2
DYNAMIC_EXTRA_OPERATORS = 2


@dataclass
class GateVerdict:
    """The admission decision for one candidate rule."""

    rule_name: str
    admitted: bool
    #: Machine-readable rejection reasons, ``"<stage>:<code>: <detail>"``.
    reasons: List[str]
    #: Non-rejecting findings worth a human look (WARNING-level).
    advisories: List[str]
    #: Every static diagnostic the gate saw.
    report: AnalysisReport
    #: FULL-variant outcome of the dynamic differential check, or None
    #: when the gate ran static-only or short-circuited on static errors.
    dynamic_status: Optional[str] = None
    dynamic_detail: str = ""
    counters: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_name,
            "admitted": self.admitted,
            "reasons": list(self.reasons),
            "advisories": list(self.advisories),
            "dynamic_status": self.dynamic_status,
            "dynamic_detail": self.dynamic_detail,
            "static_summary": {
                "errors": len(self.report.errors),
                "warnings": len(self.report.warnings),
                "infos": len(self.report.infos),
            },
            "diagnostics": [d.to_dict() for d in self.report.diagnostics],
        }


class RuleGate:
    """Admission gate composing RL + SV + AL + IG + a dynamic check."""

    def __init__(
        self,
        registry: Optional[RuleRegistry] = None,
        database=None,
        workloads: Optional[Sequence] = None,
        samples_per_workload: int = 4,
        seed: int = 0,
    ) -> None:
        from repro.rules.registry import default_registry

        self.registry = registry or default_registry()
        self.workloads = list(
            workloads if workloads is not None else default_workloads()
        )
        self.samples = samples_per_workload
        self.seed = seed
        self._database = database

    # --------------------------------------------------------------- public

    def check(
        self, rule: Union[Rule, str], static_only: bool = False
    ) -> GateVerdict:
        """Gate one candidate: a :class:`Rule` instance or the name of a
        rule already in the registry (useful for auditing the seed set).
        """
        if isinstance(rule, str):
            rule = self.registry.rule(rule)
        candidate_registry = self._registry_with(rule)
        report = AnalysisReport()

        linter = RegistryLinter(
            candidate_registry,
            workloads=self.workloads,
            samples_per_workload=self.samples,
            seed=self.seed,
        )
        report.merge(linter.lint_rule(rule))

        verifier = SubstitutionVerifier(
            candidate_registry,
            workloads=self.workloads,
            samples_per_workload=self.samples,
            seed=self.seed,
        )
        report.merge(verifier.verify_rule(rule))

        report.extend(AstLinter(candidate_registry).lint_rule(rule))

        analyzer = InteractionAnalyzer(
            candidate_registry,
            workloads=self.workloads,
            samples_per_workload=self.samples,
            seed=self.seed,
        )
        report.merge(analyzer.rule_report(rule))

        reasons = [
            f"static:{d.code}: {d.message}" for d in report.errors
        ]
        advisories = [
            f"static:{d.code}: {d.message}" for d in report.warnings
        ]
        dynamic_status: Optional[str] = None
        dynamic_detail = ""
        if not reasons and not static_only:
            dynamic_status, dynamic_detail = self._dynamic_check(
                rule, candidate_registry
            )
            if dynamic_status is not None and dynamic_status in (
                "KILLED",
                "CRASHED",
                "NO_FIRE",
            ):
                detail = (
                    dynamic_detail
                    or "the differential oracle detected the candidate build"
                )
                reasons.append(f"dynamic:{dynamic_status}: {detail}")
        return GateVerdict(
            rule_name=rule.name,
            admitted=not reasons,
            reasons=reasons,
            advisories=advisories,
            report=report,
            dynamic_status=dynamic_status,
            dynamic_detail=dynamic_detail,
            counters=dict(report.counters),
        )

    def check_all(
        self, static_only: bool = False
    ) -> List[GateVerdict]:
        """Gate every exploration rule of the registry in order."""
        return [
            self.check(rule, static_only=static_only)
            for rule in self.registry.exploration_rules
        ]

    # ------------------------------------------------------------ internals

    def _registry_with(self, rule: Rule) -> RuleRegistry:
        """The registry as it would look with ``rule`` admitted."""
        if rule.name in self.registry:
            return self.registry.with_replaced_rule(rule)
        exploration = list(self.registry.exploration_rules)
        implementation = list(self.registry.implementation_rules)
        if rule.is_exploration:
            exploration.append(rule)
        else:
            implementation.append(rule)
        return RuleRegistry(exploration, implementation)

    def _dynamic_check(self, rule: Rule, candidate_registry: RuleRegistry):
        from repro.testing.mutation.campaign import MutationCampaign

        campaign = MutationCampaign(
            self._get_database(),
            candidate_registry,
            pool=DYNAMIC_POOL,
            k=DYNAMIC_K,
            seeds=DYNAMIC_SEEDS,
            extra_operators=DYNAMIC_EXTRA_OPERATORS,
        )
        outcome = campaign.evaluate_rule(rule)
        full = outcome.variants["FULL"]
        return full.status, full.detail

    def _get_database(self):
        if self._database is None:
            from repro.workloads import tpch_database

            self._database = tpch_database(seed=1)
        return self._database
