"""Pass 5: implementation AST lint (AL5xx).

A rule's *declared* interface is its pattern: the optimizer guarantees the
binding matches the pattern structurally, and nothing more.  This pass
parses the Python source of every rule's ``precondition``/``substitute``
(plus helper methods on the rule class) with the :mod:`ast` module and
flags drift between the declared pattern and the implementation:

* **AL500** (INFO) -- source unavailable (dynamically generated rule);
  the implementation could not be analyzed;
* **AL501** (WARNING) -- attribute read on a node the pattern does not
  bind: a variable mapped to a generic pattern position (or a position
  below the pattern) is accessed beyond the kind-independent
  :class:`LogicalOp` API, or a variable mapped to a bound operator kind
  reads an attribute that kind does not define.  The structural match
  never checked that node's kind, so the read can raise
  ``AttributeError`` (or silently read the wrong field) on a legal
  binding;
* **AL502** (WARNING) -- iteration over an unordered set (set literal,
  comprehension, ``set()``/``frozenset()`` call, or ``column_ids``
  result) without ``sorted()``: plan shapes and diagnostics become
  dependent on ``PYTHONHASHSEED``, breaking determinism;
* **AL503** (ERROR) -- in-place mutation of a binding-derived node
  (attribute assignment, augmented assignment, or a mutating method call
  rooted at the binding).  Memo expressions are shared; operators and
  expressions are frozen dataclasses, so mutation either raises or
  corrupts every plan holding the node;
* **AL504** (WARNING) -- bare ``except:``, which swallows
  ``KeyboardInterrupt``/``SystemExit`` and hides substitution crashes
  that the SV pass would otherwise report.

The variable-to-pattern-position mapping is intentionally shallow: the
``binding`` parameter is the pattern root, and assignments through the
navigation attributes (``child``/``left``/``right``) move to child
positions.  Anything the tracker cannot resolve is left unchecked rather
than guessed at -- the pass is tuned so the clean seed registry reports
zero findings.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.logical.operators import OpKind
from repro.rules.framework import PatternNode, Rule
from repro.rules.registry import RuleRegistry

#: Attributes defined by every LogicalOp regardless of kind -- safe to
#: access on generic (unbound) pattern positions.
UNIVERSAL_ATTRS = frozenset(
    {
        "kind",
        "children",
        "arity",
        "walk",
        "fingerprint",
        "describe",
        "pretty",
        "with_children",
        "tree_size",
        "is_tree",
    }
)

#: Attributes each operator kind defines (navigation + payload).  A read
#: outside this set on a variable bound to that kind is pattern drift.
KIND_ATTRS: Dict[OpKind, frozenset] = {
    OpKind.GET: frozenset({"table", "columns", "alias"}),
    OpKind.SELECT: frozenset({"child", "predicate"}),
    OpKind.PROJECT: frozenset({"child", "outputs", "output_columns"}),
    OpKind.JOIN: frozenset({"join_kind", "left", "right", "predicate"}),
    OpKind.APPLY: frozenset({"apply_kind", "left", "right", "predicate"}),
    OpKind.GB_AGG: frozenset(
        {"child", "group_by", "aggregates", "phase", "output_columns"}
    ),
    OpKind.UNION_ALL: frozenset(
        {"left", "right", "output_columns", "left_columns", "right_columns"}
    ),
    OpKind.UNION: frozenset(
        {"left", "right", "output_columns", "left_columns", "right_columns"}
    ),
    OpKind.INTERSECT: frozenset(
        {"left", "right", "output_columns", "left_columns", "right_columns"}
    ),
    OpKind.EXCEPT: frozenset(
        {"left", "right", "output_columns", "left_columns", "right_columns"}
    ),
    OpKind.DISTINCT: frozenset({"child"}),
    OpKind.SORT: frozenset({"child", "keys"}),
    OpKind.LIMIT: frozenset({"child", "count"}),
}

#: Navigation attribute -> child index, used to map variables onto
#: pattern positions.
_NAV_INDEX = {"child": 0, "left": 0, "right": 1}

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "clear",
        "add",
        "discard",
        "update",
        "sort",
        "reverse",
        "setdefault",
    }
)

_HINTS = {
    "AL500": "define the rule in a module so its source can be analyzed",
    "AL501": "narrow the pattern so the node is bound, or guard the read "
    "with an explicit kind check",
    "AL502": "wrap the iterable in sorted(...) to fix the iteration order",
    "AL503": "build a new operator with replaced fields (e.g. "
    "with_children or the dataclass constructor) instead of mutating",
    "AL504": "catch specific exception types so real crashes surface",
}

_REPO_ROOT = Path(__file__).resolve().parents[3]


class AstLinter:
    """AST lint over the implementations of a registry's rules."""

    def __init__(self, registry: RuleRegistry) -> None:
        self.registry = registry

    def run(self) -> AnalysisReport:
        report = AnalysisReport()
        for rule in self.registry.all_rules:
            report.extend(self.lint_rule(rule))
            report.count("rules_ast_linted")
        return report

    # ------------------------------------------------------------- per rule

    def lint_rule(self, rule: Rule) -> List[Diagnostic]:
        """Lint one rule instance (also the admission gate's entry point)."""
        findings: List[Diagnostic] = []
        seen: Set[Tuple[str, Optional[str], str]] = set()
        for name, func in _rule_functions(rule):
            parsed = _parse_function(func)
            if parsed is None:
                findings.append(
                    Diagnostic(
                        "AL500",
                        Severity.INFO,
                        f"source of {name} is unavailable; the "
                        "implementation was not analyzed",
                        rule=rule.name,
                        hint=_HINTS["AL500"],
                    )
                )
                continue
            tree, location = parsed
            checker = _FunctionChecker(rule, name, tree, location)
            for diagnostic in checker.check():
                key = (
                    diagnostic.code,
                    diagnostic.location,
                    diagnostic.message,
                )
                if key not in seen:
                    seen.add(key)
                    findings.append(diagnostic)
        return findings


# --------------------------------------------------------------- collection


def _rule_functions(rule: Rule):
    """``(name, function)`` for every method the rule's classes define.

    Walks the MRO up to (excluding) :class:`Rule`, so shared helper base
    classes are analyzed once per rule with the *rule's own* pattern; the
    most-derived definition of each name wins.
    """
    collected: Dict[str, object] = {}
    for cls in type(rule).__mro__:
        if cls is Rule or cls is object:
            break
        for name, member in vars(cls).items():
            if name in collected:
                continue
            if isinstance(member, (staticmethod, classmethod)):
                member = member.__func__
            if inspect.isfunction(member):
                collected[name] = member
    return sorted(collected.items())


def _parse_function(func) -> Optional[Tuple[ast.FunctionDef, str]]:
    """Parse a function's source; returns ``(ast, "file:line")`` or None."""
    try:
        source = textwrap.dedent(inspect.getsource(func))
        module = ast.parse(source)
    except (OSError, TypeError, IndentationError, SyntaxError):
        return None
    definition = next(
        (
            node
            for node in module.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ),
        None,
    )
    if definition is None:
        return None
    code = getattr(func, "__code__", None)
    filename = code.co_filename if code is not None else "<unknown>"
    try:
        filename = str(Path(filename).resolve().relative_to(_REPO_ROOT))
    except ValueError:
        filename = Path(filename).name
    first_line = code.co_firstlineno if code is not None else 1
    return definition, f"{filename}:{first_line}"


# ----------------------------------------------------------------- checking


class _FunctionChecker(ast.NodeVisitor):
    """Per-function visitor producing AL5xx diagnostics."""

    def __init__(
        self,
        rule: Rule,
        func_name: str,
        tree: ast.FunctionDef,
        location: str,
    ) -> None:
        self.rule = rule
        self.func_name = func_name
        self.tree = tree
        self.file, _, first = location.rpartition(":")
        self.first_line = int(first)
        self.findings: List[Diagnostic] = []
        #: var name -> pattern position (tuple of child indices from root).
        self.positions: Dict[str, Tuple[int, ...]] = {}
        #: var names holding binding-derived objects (superset of above).
        self.derived: Set[str] = set()
        #: var names holding unordered-set values.
        self.sets: Set[str] = set()
        self._bind_parameters()

    # ------------------------------------------------------------ plumbing

    def check(self) -> List[Diagnostic]:
        for statement in self.tree.body:
            self.visit(statement)
        return self.findings

    def _emit(self, code: str, severity: Severity, message: str, node) -> None:
        line = self.first_line + node.lineno - 1
        self.findings.append(
            Diagnostic(
                code,
                severity,
                f"{self.func_name}: {message}",
                rule=self.rule.name,
                location=f"{self.file}:{line}",
                hint=_HINTS[code],
            )
        )

    def _bind_parameters(self) -> None:
        args = [arg.arg for arg in self.tree.args.args]
        root: Optional[str] = None
        if "binding" in args:
            root = "binding"
        elif self.func_name in ("precondition", "substitute") and len(args) > 1:
            root = args[1]
        if root is not None:
            self.positions[root] = ()
            self.derived.add(root)

    # ----------------------------------------------------------- resolution

    def _pattern_at(
        self, position: Tuple[int, ...]
    ) -> Optional[PatternNode]:
        """Pattern node at ``position``, or None when below the pattern."""
        node = self.rule.pattern
        for index in position:
            if node.is_generic or index >= len(node.children):
                return None
            node = node.children[index]
        return node

    def _resolve_position(self, expr) -> Optional[Tuple[int, ...]]:
        if isinstance(expr, ast.Name):
            return self.positions.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._resolve_position(expr.value)
            if base is not None and expr.attr in _NAV_INDEX:
                return base + (_NAV_INDEX[expr.attr],)
        return None

    def _rooted_in_binding(self, expr) -> bool:
        """Is ``expr`` an attribute/subscript chain off a binding var?"""
        while isinstance(expr, (ast.Attribute, ast.Subscript)):
            expr = expr.value
        return isinstance(expr, ast.Name) and expr.id in self.derived

    def _is_setlike(self, expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in self.sets
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and func.attr == "column_ids":
                return True
        if isinstance(expr, ast.Attribute) and expr.attr == "column_ids":
            return True
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_setlike(expr.left) or self._is_setlike(expr.right)
        return False

    # ---------------------------------------------------------- assignments

    def _record_assignment(self, target, value) -> None:
        if not isinstance(target, ast.Name):
            return
        name = target.id
        position = self._resolve_position(value)
        if position is not None:
            self.positions[name] = position
        else:
            self.positions.pop(name, None)
        if self._rooted_in_binding(value):
            self.derived.add(name)
        else:
            self.derived.discard(name)
        if self._is_setlike(value):
            self.sets.add(name)
        else:
            self.sets.discard(name)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_mutation_target(node.targets, node)
        self.generic_visit(node)
        for target in node.targets:
            if isinstance(target, ast.Tuple):
                for element in target.elts:
                    self._record_assignment(element, ast.Constant(value=None))
            else:
                self._record_assignment(target, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_mutation_target([node.target], node)
        self.generic_visit(node)
        if node.value is not None:
            self._record_assignment(node.target, node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_mutation_target([node.target], node)
        self.generic_visit(node)

    def _check_mutation_target(self, targets, node) -> None:
        for target in targets:
            if isinstance(
                target, (ast.Attribute, ast.Subscript)
            ) and self._rooted_in_binding(target):
                self._emit(
                    "AL503",
                    Severity.ERROR,
                    "in-place mutation of a binding-derived node; memo "
                    "expressions are shared and frozen",
                    node,
                )

    # ------------------------------------------------------------- AL501/3

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.generic_visit(node)
        position = self._resolve_position(node.value)
        if position is None:
            return
        pattern_node = self._pattern_at(position)
        where = "root" + "".join(f".{i}" for i in position)
        if pattern_node is None or pattern_node.is_generic:
            if node.attr not in UNIVERSAL_ATTRS:
                self._emit(
                    "AL501",
                    Severity.WARNING,
                    f"reads `.{node.attr}` on pattern position {where}, "
                    "which the pattern leaves generic; the structural "
                    "match never checked that node's kind",
                    node,
                )
            return
        allowed = KIND_ATTRS.get(pattern_node.kind, frozenset())
        if node.attr not in allowed and node.attr not in UNIVERSAL_ATTRS:
            self._emit(
                "AL501",
                Severity.WARNING,
                f"reads `.{node.attr}` on pattern position {where}, "
                f"bound to {pattern_node.kind.value}, which defines no "
                "such attribute",
                node,
            )

    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATORS
            and self._rooted_in_binding(func.value)
        ):
            self._emit(
                "AL503",
                Severity.ERROR,
                f"calls `.{func.attr}(...)` on a binding-derived value; "
                "memo expressions are shared and frozen",
                node,
            )

    # --------------------------------------------------------------- AL502

    def _check_iteration(self, iterable, node) -> None:
        if self._is_setlike(iterable):
            self._emit(
                "AL502",
                Severity.WARNING,
                "iterates over an unordered set; plan shapes become "
                "PYTHONHASHSEED-dependent",
                node,
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)
        if isinstance(node.target, ast.Name):
            self._record_assignment(node.target, ast.Constant(value=None))

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            self._check_iteration(generator.iter, node)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # --------------------------------------------------------------- AL504

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit(
                "AL504",
                Severity.WARNING,
                "bare `except:` swallows SystemExit/KeyboardInterrupt and "
                "hides substitution crashes",
                node,
            )
        self.generic_visit(node)
