"""Logical relational operators.

A *logical query tree* (paper, Section 2.2) is a tree of these operators,
each instantiated with its arguments -- e.g. ``Get`` carries the table it
reads and the bound output columns, ``Join`` carries its kind and predicate.

The same node classes serve two roles:

* as plain trees (children are operators), produced by the query generators
  and consumed by the optimizer's initializer and the SQL generator; and
* as memo *group expressions* (children are :class:`GroupRef` placeholders),
  inside the optimizer.

Nodes are immutable; ``with_children`` rebuilds a node around new children,
which is how rules construct substitutes and how the memo rewrites trees
into group references.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.expr.aggregates import AggregateCall
from repro.expr.expressions import TRUE, Column, Expr


class OpKind(enum.Enum):
    """Logical operator kinds; also the vocabulary of rule patterns."""

    GET = "Get"
    SELECT = "Select"
    PROJECT = "Project"
    JOIN = "Join"
    GB_AGG = "GbAgg"
    UNION_ALL = "UnionAll"
    UNION = "Union"
    INTERSECT = "Intersect"
    EXCEPT = "Except"
    DISTINCT = "Distinct"
    SORT = "Sort"
    LIMIT = "Limit"
    APPLY = "Apply"


class JoinKind(enum.Enum):
    INNER = "INNER"
    CROSS = "CROSS"
    LEFT_OUTER = "LEFT OUTER"
    SEMI = "SEMI"
    ANTI = "ANTI"

    @property
    def preserves_right_columns(self) -> bool:
        """Do right-side columns appear in the join output?"""
        return self in (JoinKind.INNER, JoinKind.CROSS, JoinKind.LEFT_OUTER)


@dataclass(frozen=True)
class GroupRef:
    """A placeholder child pointing at a memo group."""

    group_id: int

    def __repr__(self) -> str:
        return f"G{self.group_id}"


class LogicalOp:
    """Base class for all logical operators."""

    __slots__ = ()
    kind: OpKind

    @property
    def children(self) -> Tuple:
        raise NotImplementedError

    def with_children(self, children: Tuple) -> "LogicalOp":
        raise NotImplementedError

    @property
    def arity(self) -> int:
        return len(self.children)

    def is_tree(self) -> bool:
        """True when all descendants are operators (no group references)."""
        return all(
            isinstance(child, LogicalOp) and child.is_tree()
            for child in self.children
        )

    def walk(self) -> Iterator["LogicalOp"]:
        """Pre-order traversal (tree mode only)."""
        yield self
        for child in self.children:
            if isinstance(child, LogicalOp):
                yield from child.walk()

    def tree_size(self) -> int:
        """Number of operator nodes in this tree."""
        return sum(1 for _ in self.walk())

    def fingerprint(self) -> str:
        """Stable structural content hash (tree mode only).

        See :mod:`repro.logical.fingerprint`; equal trees hash equal across
        processes, which makes the fingerprint usable as a cache key.
        """
        from repro.logical.fingerprint import fingerprint

        return fingerprint(self)

    def pretty(self, indent: int = 0) -> str:
        """Indented multi-line rendering of the tree."""
        pad = "  " * indent
        lines = [pad + self.describe()]
        for child in self.children:
            if isinstance(child, LogicalOp):
                lines.append(child.pretty(indent + 1))
            else:
                lines.append("  " * (indent + 1) + repr(child))
        return "\n".join(lines)

    def describe(self) -> str:
        """One-line description (operator name plus arguments)."""
        return self.kind.value


@dataclass(frozen=True)
class Get(LogicalOp):
    """Access a base table, binding fresh output columns.

    ``alias`` distinguishes multiple uses of the same table in one query;
    ``columns`` are the bound :class:`Column` objects, positionally aligned
    with the table definition.
    """

    table: str
    columns: Tuple[Column, ...]
    alias: str

    kind = OpKind.GET

    @property
    def children(self) -> Tuple:
        return ()

    def with_children(self, children: Tuple) -> "Get":
        if children:
            raise ValueError("Get is a leaf")
        return self

    def describe(self) -> str:
        if self.alias != self.table:
            return f"Get({self.table} AS {self.alias})"
        return f"Get({self.table})"


@dataclass(frozen=True)
class Select(LogicalOp):
    """Filter rows by a predicate (relational selection)."""

    child: object
    predicate: Expr

    kind = OpKind.SELECT

    @property
    def children(self) -> Tuple:
        return (self.child,)

    def with_children(self, children: Tuple) -> "Select":
        (child,) = children
        return Select(child, self.predicate)

    def describe(self) -> str:
        return f"Select({self.predicate})"


@dataclass(frozen=True)
class Project(LogicalOp):
    """Compute output columns.

    ``outputs`` is an ordered tuple of ``(column, expression)`` pairs.  A
    pass-through output uses the *same* Column object it forwards, keeping
    column identity stable across the projection.
    """

    child: object
    outputs: Tuple[Tuple[Column, Expr], ...]

    kind = OpKind.PROJECT

    @property
    def children(self) -> Tuple:
        return (self.child,)

    def with_children(self, children: Tuple) -> "Project":
        (child,) = children
        return Project(child, self.outputs)

    @property
    def output_columns(self) -> Tuple[Column, ...]:
        return tuple(column for column, _ in self.outputs)

    def describe(self) -> str:
        items = ", ".join(
            f"{column.name}={expr}" for column, expr in self.outputs
        )
        return f"Project({items})"


@dataclass(frozen=True)
class Join(LogicalOp):
    """Binary join of any :class:`JoinKind`; CROSS joins carry TRUE."""

    join_kind: JoinKind
    left: object
    right: object
    predicate: Expr = TRUE

    kind = OpKind.JOIN

    @property
    def children(self) -> Tuple:
        return (self.left, self.right)

    def with_children(self, children: Tuple) -> "Join":
        left, right = children
        return Join(self.join_kind, left, right, self.predicate)

    def describe(self) -> str:
        return f"Join[{self.join_kind.value}]({self.predicate})"


@dataclass(frozen=True)
class Apply(LogicalOp):
    """A not-yet-unnested ``[NOT] EXISTS`` / ``IN`` subquery.

    The binder produces Apply for every subquery predicate; the unnesting
    rules (:mod:`repro.rules.exploration.subquery_rules`) rewrite it into
    the equivalent semi/anti :class:`Join`.  ``apply_kind`` is restricted to
    ``JoinKind.SEMI`` (EXISTS / IN) and ``JoinKind.ANTI`` (NOT EXISTS /
    NOT IN); ``predicate`` carries the correlation condition, which may
    reference columns of both sides (columns are globally id-bound, so no
    capture is possible).  Output schema is the left side's columns --
    identical to the matching semi/anti join.
    """

    apply_kind: JoinKind
    left: object
    right: object
    predicate: Expr = TRUE

    kind = OpKind.APPLY

    def __post_init__(self) -> None:
        if self.apply_kind not in (JoinKind.SEMI, JoinKind.ANTI):
            raise ValueError(
                f"Apply kind must be SEMI or ANTI, got {self.apply_kind}"
            )

    @property
    def children(self) -> Tuple:
        return (self.left, self.right)

    def with_children(self, children: Tuple) -> "Apply":
        left, right = children
        return Apply(self.apply_kind, left, right, self.predicate)

    def describe(self) -> str:
        return f"Apply[{self.apply_kind.value}]({self.predicate})"


@dataclass(frozen=True)
class GbAgg(LogicalOp):
    """Group-By / Aggregate.

    ``group_by`` are the grouping columns (possibly empty: scalar aggregate
    over the whole input).  ``aggregates`` is an ordered tuple of
    ``(output column, aggregate call)`` pairs.  Output schema is the grouping
    columns followed by the aggregate outputs.

    ``phase`` is an optimizer annotation ("single", "local" or "global")
    set by the aggregation-splitting rules so they do not re-split their own
    products; it has no execution semantics.
    """

    child: object
    group_by: Tuple[Column, ...]
    aggregates: Tuple[Tuple[Column, AggregateCall], ...]
    phase: str = "single"

    kind = OpKind.GB_AGG

    @property
    def children(self) -> Tuple:
        return (self.child,)

    def with_children(self, children: Tuple) -> "GbAgg":
        (child,) = children
        return GbAgg(child, self.group_by, self.aggregates, self.phase)

    @property
    def output_columns(self) -> Tuple[Column, ...]:
        return self.group_by + tuple(col for col, _ in self.aggregates)

    def describe(self) -> str:
        groups = ", ".join(column.name for column in self.group_by)
        aggs = ", ".join(
            f"{column.name}={call}" for column, call in self.aggregates
        )
        return f"GbAgg([{groups}] {aggs})"


class _SetOp(LogicalOp):
    """Shared shape for the binary set operators."""

    __slots__ = ()

    def describe(self) -> str:
        return self.kind.value


@dataclass(frozen=True)
class UnionAll(_SetOp):
    """Bag union.  Output columns are fresh (``output_columns``), mapped
    positionally from each input's columns."""

    left: object
    right: object
    output_columns: Tuple[Column, ...]
    left_columns: Tuple[Column, ...]
    right_columns: Tuple[Column, ...]

    kind = OpKind.UNION_ALL

    @property
    def children(self) -> Tuple:
        return (self.left, self.right)

    def with_children(self, children: Tuple) -> "UnionAll":
        left, right = children
        return UnionAll(
            left, right, self.output_columns, self.left_columns,
            self.right_columns,
        )


@dataclass(frozen=True)
class Union(_SetOp):
    """Set union (duplicates eliminated)."""

    left: object
    right: object
    output_columns: Tuple[Column, ...]
    left_columns: Tuple[Column, ...]
    right_columns: Tuple[Column, ...]

    kind = OpKind.UNION

    @property
    def children(self) -> Tuple:
        return (self.left, self.right)

    def with_children(self, children: Tuple) -> "Union":
        left, right = children
        return Union(
            left, right, self.output_columns, self.left_columns,
            self.right_columns,
        )


@dataclass(frozen=True)
class Intersect(_SetOp):
    """Set intersection (SQL INTERSECT: distinct output)."""

    left: object
    right: object
    output_columns: Tuple[Column, ...]
    left_columns: Tuple[Column, ...]
    right_columns: Tuple[Column, ...]

    kind = OpKind.INTERSECT

    @property
    def children(self) -> Tuple:
        return (self.left, self.right)

    def with_children(self, children: Tuple) -> "Intersect":
        left, right = children
        return Intersect(
            left, right, self.output_columns, self.left_columns,
            self.right_columns,
        )


@dataclass(frozen=True)
class Except(_SetOp):
    """Set difference (SQL EXCEPT: distinct output)."""

    left: object
    right: object
    output_columns: Tuple[Column, ...]
    left_columns: Tuple[Column, ...]
    right_columns: Tuple[Column, ...]

    kind = OpKind.EXCEPT

    @property
    def children(self) -> Tuple:
        return (self.left, self.right)

    def with_children(self, children: Tuple) -> "Except":
        left, right = children
        return Except(
            left, right, self.output_columns, self.left_columns,
            self.right_columns,
        )


@dataclass(frozen=True)
class Distinct(LogicalOp):
    """Duplicate elimination over the child's full row."""

    child: object

    kind = OpKind.DISTINCT

    @property
    def children(self) -> Tuple:
        return (self.child,)

    def with_children(self, children: Tuple) -> "Distinct":
        (child,) = children
        return Distinct(child)


@dataclass(frozen=True)
class SortKey:
    column: Column
    ascending: bool = True

    def __str__(self) -> str:
        direction = "ASC" if self.ascending else "DESC"
        return f"{self.column.name} {direction}"


@dataclass(frozen=True)
class Sort(LogicalOp):
    """Logical order-by (presentation order)."""

    child: object
    keys: Tuple[SortKey, ...]

    kind = OpKind.SORT

    @property
    def children(self) -> Tuple:
        return (self.child,)

    def with_children(self, children: Tuple) -> "Sort":
        (child,) = children
        return Sort(child, self.keys)

    def describe(self) -> str:
        return f"Sort({', '.join(str(key) for key in self.keys)})"


@dataclass(frozen=True)
class Limit(LogicalOp):
    """Return the first ``count`` rows of the child."""

    child: object
    count: int

    kind = OpKind.LIMIT

    @property
    def children(self) -> Tuple:
        return (self.child,)

    def with_children(self, children: Tuple) -> "Limit":
        (child,) = children
        return Limit(child, self.count)

    def describe(self) -> str:
        return f"Limit({self.count})"


SET_OP_KINDS = (OpKind.UNION_ALL, OpKind.UNION, OpKind.INTERSECT, OpKind.EXCEPT)


def is_set_op(op: LogicalOp) -> bool:
    return op.kind in SET_OP_KINDS


def make_get(table_def, alias: Optional[str] = None) -> Get:
    """Bind a Get over ``table_def`` with fresh output columns."""
    alias = alias or table_def.name
    columns = tuple(
        Column(
            name=column.name,
            data_type=column.data_type,
            nullable=column.nullable,
            table=alias,
        )
        for column in table_def.columns
    )
    return Get(table=table_def.name, columns=columns, alias=alias)
