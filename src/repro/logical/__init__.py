"""Logical operators, derived properties and cardinality estimation."""

from repro.logical.cardinality import CardinalityEstimator, RelEstimate
from repro.logical.fingerprint import FingerprintError, fingerprint
from repro.logical.operators import (
    Distinct,
    Except,
    GbAgg,
    Get,
    GroupRef,
    Intersect,
    Join,
    JoinKind,
    Limit,
    LogicalOp,
    OpKind,
    Project,
    Select,
    Sort,
    SortKey,
    Union,
    UnionAll,
    is_set_op,
    make_get,
)
from repro.logical.properties import (
    LogicalProps,
    PropertyDeriver,
    equijoin_pairs,
    is_pure_equijoin,
)
from repro.logical.validate import ValidationError, validate_tree

__all__ = [
    "CardinalityEstimator",
    "Distinct",
    "Except",
    "FingerprintError",
    "GbAgg",
    "Get",
    "GroupRef",
    "Intersect",
    "Join",
    "JoinKind",
    "Limit",
    "LogicalOp",
    "LogicalProps",
    "OpKind",
    "Project",
    "PropertyDeriver",
    "RelEstimate",
    "Select",
    "Sort",
    "SortKey",
    "Union",
    "UnionAll",
    "ValidationError",
    "equijoin_pairs",
    "fingerprint",
    "is_pure_equijoin",
    "is_set_op",
    "make_get",
    "validate_tree",
]
