"""Derived logical properties: output schema, keys, non-null columns.

Properties are derived bottom-up per operator.  They drive several rule
preconditions from the paper's discussion:

* unique keys -> `GbAggPullAboveJoin` ("the Group-By must include the joining
  columns" and the other side must contribute at most one match),
  `DistinctRemoveOnKey`, `GbAggRemoveOnKey`;
* non-null columns + null-rejecting predicates -> `LojToJoinOnNullReject`;
* cardinality -> the cost model (see :mod:`repro.logical.cardinality`).

Keys are represented as frozensets of column ids.  An *empty* key means the
relation has at most one row (e.g. a scalar aggregate).  Key inference is
conservative: every reported key is genuinely a key, but not every key is
reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

from repro.catalog.schema import Catalog
from repro.expr.expressions import (
    Column,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    conjuncts,
    is_nullable,
    referenced_columns,
)
from repro.logical.operators import (
    Distinct,
    GbAgg,
    Get,
    Join,
    JoinKind,
    LogicalOp,
    OpKind,
    Project,
    Select,
)

Key = FrozenSet[int]


@dataclass(frozen=True)
class LogicalProps:
    """Logical properties of one relational expression."""

    columns: Tuple[Column, ...]
    keys: FrozenSet[Key] = frozenset()
    non_null: FrozenSet[Column] = field(default_factory=frozenset)

    @property
    def column_ids(self) -> FrozenSet[int]:
        return frozenset(column.cid for column in self.columns)

    def has_key(self, column_ids: FrozenSet[int]) -> bool:
        """Is some reported key a subset of ``column_ids``?"""
        return any(key <= column_ids for key in self.keys)

    def is_unique_on(self, column_ids: FrozenSet[int]) -> bool:
        """Alias of :meth:`has_key` -- rows are unique on ``column_ids``."""
        return self.has_key(column_ids)

    @property
    def at_most_one_row(self) -> bool:
        return frozenset() in self.keys


def _prune_keys(keys) -> FrozenSet[Key]:
    """Drop keys that are supersets of other keys (keep minimal ones)."""
    keys = set(keys)
    minimal = set()
    for key in sorted(keys, key=len):
        if not any(other < key for other in minimal):
            minimal.add(key)
    return frozenset(minimal)


def equijoin_pairs(predicate: Expr) -> Tuple[Tuple[Column, Column], ...]:
    """Extract ``left_col = right_col`` equality conjuncts from a predicate.

    Non-equality conjuncts are ignored; callers that need a *pure* equijoin
    should also check :func:`is_pure_equijoin`.
    """
    pairs = []
    for conjunct in conjuncts(predicate):
        if (
            isinstance(conjunct, Comparison)
            and conjunct.op is ComparisonOp.EQ
            and isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, ColumnRef)
        ):
            pairs.append((conjunct.left.column, conjunct.right.column))
    return tuple(pairs)


def is_pure_equijoin(predicate: Expr, left_ids, right_ids) -> bool:
    """True if every conjunct is a column=column equality across the sides."""
    for conjunct in conjuncts(predicate):
        if not (
            isinstance(conjunct, Comparison)
            and conjunct.op is ComparisonOp.EQ
            and isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, ColumnRef)
        ):
            return False
        a = conjunct.left.column.cid
        b = conjunct.right.column.cid
        across = (a in left_ids and b in right_ids) or (
            a in right_ids and b in left_ids
        )
        if not across:
            return False
    return True


class PropertyDeriver:
    """Bottom-up derivation of :class:`LogicalProps` for operator nodes.

    ``derive(op, child_props)`` is the single-step form used inside the
    memo (children's properties already known); :meth:`derive_tree` recurses
    over a full logical tree.
    """

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    # -------------------------------------------------------------- tree mode

    def derive_tree(self, op: LogicalOp) -> LogicalProps:
        child_props = tuple(
            self.derive_tree(child) for child in op.children
        )
        return self.derive(op, child_props)

    # -------------------------------------------------------------- dispatch

    def derive(
        self, op: LogicalOp, child_props: Tuple[LogicalProps, ...]
    ) -> LogicalProps:
        handler = self._HANDLERS[op.kind]
        return handler(self, op, child_props)

    # -------------------------------------------------------------- per-op

    def _derive_get(self, op: Get, child_props) -> LogicalProps:
        table = self.catalog.table(op.table)
        by_name: Dict[str, Column] = {
            column.name: column for column in op.columns
        }
        keys = set()
        for key in table.all_keys():
            keys.add(frozenset(by_name[name].cid for name in key))
        non_null = frozenset(
            by_name[column.name]
            for column in table.columns
            if not column.nullable
        )
        return LogicalProps(
            columns=op.columns, keys=_prune_keys(keys), non_null=non_null
        )

    def _derive_select(self, op: Select, child_props) -> LogicalProps:
        (child,) = child_props
        # An equality with a constant on a key column caps output at one row.
        keys = set(child.keys)
        single_valued = self._constant_bound_columns(op.predicate)
        if single_valued:
            for key in child.keys:
                reduced = key - single_valued
                keys.add(reduced)
        return LogicalProps(
            columns=child.columns,
            keys=_prune_keys(keys),
            non_null=child.non_null | self._null_rejected(op.predicate, child),
        )

    @staticmethod
    def _constant_bound_columns(predicate: Expr) -> FrozenSet[int]:
        """Columns equated with a literal by some conjunct."""
        bound = set()
        for conjunct in conjuncts(predicate):
            if (
                isinstance(conjunct, Comparison)
                and conjunct.op is ComparisonOp.EQ
            ):
                left, right = conjunct.left, conjunct.right
                if isinstance(left, ColumnRef) and not referenced_columns(right):
                    bound.add(left.column.cid)
                elif isinstance(right, ColumnRef) and not referenced_columns(left):
                    bound.add(right.column.cid)
        return frozenset(bound)

    @staticmethod
    def _null_rejected(predicate: Expr, child: LogicalProps) -> FrozenSet[Column]:
        """Columns that survive the filter only when non-NULL.

        A strict comparison conjunct referencing a column guarantees the
        column is non-NULL in every surviving row.
        """
        by_id = {column.cid: column for column in child.columns}
        rejected = set()
        for conjunct in conjuncts(predicate):
            if isinstance(conjunct, Comparison):
                for column in referenced_columns(conjunct):
                    if column.cid in by_id:
                        rejected.add(by_id[column.cid])
        return frozenset(rejected)

    def _derive_project(self, op: Project, child_props) -> LogicalProps:
        (child,) = child_props
        out_cols = op.output_columns
        # An output that is a plain column reference -- a pass-through or a
        # rename -- inherits the source column's key membership; computed
        # outputs inherit nothing.
        image: Dict[int, Column] = {}
        for column, expr in op.outputs:
            if isinstance(expr, ColumnRef):
                image.setdefault(expr.column.cid, column)
        keys = set()
        for key in child.keys:
            if all(cid in image for cid in key):
                keys.add(frozenset(image[cid].cid for cid in key))
        non_null = frozenset(
            column
            for column, expr in op.outputs
            if not is_nullable(expr, child.non_null)
        )
        return LogicalProps(
            columns=out_cols, keys=_prune_keys(keys), non_null=non_null
        )

    def _derive_join(self, op: Join, child_props) -> LogicalProps:
        left, right = child_props
        kind = op.join_kind
        if kind is JoinKind.SEMI:
            # A surviving left row witnessed a TRUE predicate, so strict
            # comparisons in it guarantee left-side columns are non-NULL.
            return LogicalProps(
                columns=left.columns,
                keys=left.keys,
                non_null=left.non_null
                | self._null_rejected(op.predicate, left),
            )
        if kind is JoinKind.ANTI:
            # Anti-joined rows survive because the predicate *failed*; it
            # guarantees nothing about their columns.
            return LogicalProps(
                columns=left.columns, keys=left.keys, non_null=left.non_null
            )
        columns = left.columns + right.columns
        keys = set()
        pairs = equijoin_pairs(op.predicate)
        left_ids = left.column_ids
        right_ids = right.column_ids
        # N:1 joins preserve the left side's keys (and symmetrically).
        right_join_cols = frozenset(
            (b if b.cid in right_ids else a).cid for a, b in pairs
        )
        left_join_cols = frozenset(
            (a if a.cid in left_ids else b).cid for a, b in pairs
        )
        right_unique = pairs and right.has_key(right_join_cols)
        left_unique = pairs and left.has_key(left_join_cols)
        if right_unique:
            keys.update(left.keys)
        if left_unique and kind is not JoinKind.LEFT_OUTER:
            keys.update(right.keys)
        # Combined keys always hold for inner/cross/outer joins.
        for lkey in left.keys:
            for rkey in right.keys:
                keys.add(lkey | rkey)
        if kind is JoinKind.LEFT_OUTER:
            # Right side may be NULL-extended, and preserved left rows need
            # not satisfy the predicate, so it contributes nothing.
            non_null = left.non_null
        else:
            # Inner/cross joins only emit rows where the predicate held, so
            # its strict comparisons null-reject columns on both sides.
            non_null = (
                left.non_null
                | right.non_null
                | self._null_rejected(op.predicate, left)
                | self._null_rejected(op.predicate, right)
            )
        return LogicalProps(
            columns=columns, keys=_prune_keys(keys), non_null=non_null
        )

    def _derive_apply(self, op, child_props) -> LogicalProps:
        """Apply[SEMI/ANTI] derives exactly like the matching semi/anti
        join: output is the left side, and only a SEMI apply's predicate
        null-rejects surviving left columns."""
        left, _right = child_props
        if op.apply_kind is JoinKind.SEMI:
            return LogicalProps(
                columns=left.columns,
                keys=left.keys,
                non_null=left.non_null
                | self._null_rejected(op.predicate, left),
            )
        return LogicalProps(
            columns=left.columns, keys=left.keys, non_null=left.non_null
        )

    def _derive_gbagg(self, op: GbAgg, child_props) -> LogicalProps:
        (child,) = child_props
        out_cols = op.output_columns
        keys = {frozenset(column.cid for column in op.group_by)}
        non_null = {
            column
            for column in op.group_by
            if column in child.non_null
        }
        for column, call in op.aggregates:
            if not call.result_nullable():
                non_null.add(column)
            elif op.group_by and call.argument is not None and not is_nullable(
                call.argument, child.non_null
            ):
                # With grouping columns, every emitted group has at least one
                # row; SUM/MIN/MAX/AVG over a never-NULL argument cannot
                # return NULL.  (Scalar aggregates can: the input may be
                # empty.)
                non_null.add(column)
        return LogicalProps(
            columns=out_cols,
            keys=_prune_keys(keys),
            non_null=frozenset(non_null),
        )

    def _derive_setop(self, op, child_props) -> LogicalProps:
        left, right = child_props
        out_cols = op.output_columns
        remap_left = dict(zip(op.left_columns, out_cols))
        non_null = set()
        if op.kind in (OpKind.UNION_ALL, OpKind.UNION):
            remap_right = dict(zip(op.right_columns, out_cols))
            left_nn = {remap_left[c] for c in left.non_null if c in remap_left}
            right_nn = {
                remap_right[c] for c in right.non_null if c in remap_right
            }
            non_null = left_nn & right_nn
        else:
            # INTERSECT / EXCEPT output rows come from the left input.
            non_null = {
                remap_left[c] for c in left.non_null if c in remap_left
            }
        keys = set()
        if op.kind in (OpKind.UNION, OpKind.INTERSECT, OpKind.EXCEPT):
            keys.add(frozenset(column.cid for column in out_cols))
        return LogicalProps(
            columns=out_cols,
            keys=_prune_keys(keys),
            non_null=frozenset(non_null),
        )

    def _derive_distinct(self, op: Distinct, child_props) -> LogicalProps:
        (child,) = child_props
        keys = set(child.keys)
        keys.add(frozenset(column.cid for column in child.columns))
        return LogicalProps(
            columns=child.columns,
            keys=_prune_keys(keys),
            non_null=child.non_null,
        )

    def _derive_passthrough(self, op, child_props) -> LogicalProps:
        (child,) = child_props
        return child

    _HANDLERS = {
        OpKind.GET: _derive_get,
        OpKind.SELECT: _derive_select,
        OpKind.PROJECT: _derive_project,
        OpKind.JOIN: _derive_join,
        OpKind.APPLY: _derive_apply,
        OpKind.GB_AGG: _derive_gbagg,
        OpKind.UNION_ALL: _derive_setop,
        OpKind.UNION: _derive_setop,
        OpKind.INTERSECT: _derive_setop,
        OpKind.EXCEPT: _derive_setop,
        OpKind.DISTINCT: _derive_distinct,
        OpKind.SORT: _derive_passthrough,
        OpKind.LIMIT: _derive_passthrough,
    }
