"""Cardinality estimation.

Bottom-up estimation of row counts and per-column distinct counts, consumed
by the cost model.  The formulas are the classic System-R style heuristics
(equality selectivity ``1/ndv``, join selectivity ``1/max(ndv)``, fixed
factors for ranges); they are deliberately simple but *monotone* -- richer
predicates can only shrink estimates -- which together with the optimizer's
exhaustive search yields the "well-behaved" property the paper's TOPK
analysis relies on: disabling a rule never decreases the best plan's cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.catalog.schema import Catalog
from repro.catalog.stats import StatsRepository
from repro.expr.expressions import (
    BoolConnective,
    BoolExpr,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    IsNull,
    Literal,
    Not,
    referenced_columns,
)
from repro.logical.operators import (
    GbAgg,
    Get,
    Join,
    JoinKind,
    Limit,
    LogicalOp,
    OpKind,
    Project,
    Select,
)

#: Default selectivity for range predicates.
RANGE_SELECTIVITY = 0.33
#: Default selectivity when nothing better is known.
DEFAULT_SELECTIVITY = 0.25
#: Fraction of rows assumed to survive a semi/anti join without better info.
SEMI_JOIN_FRACTION = 0.5


@dataclass
class RelEstimate:
    """Estimated row count and per-column distinct counts."""

    rows: float
    ndv: Dict[int, float] = field(default_factory=dict)

    def distinct(self, cid: int) -> float:
        """NDV for column ``cid``, capped by the row count."""
        value = self.ndv.get(cid, self.rows)
        return max(1.0, min(value, self.rows)) if self.rows >= 1 else 1.0

    def capped(self) -> "RelEstimate":
        """Re-cap all NDVs by the (possibly reduced) row count."""
        rows = max(self.rows, 0.0)
        return RelEstimate(
            rows=rows,
            ndv={cid: min(v, max(rows, 1.0)) for cid, v in self.ndv.items()},
        )


class CardinalityEstimator:
    """Derives :class:`RelEstimate` per operator, bottom-up."""

    def __init__(self, catalog: Catalog, stats: StatsRepository) -> None:
        self.catalog = catalog
        self.stats = stats

    # -------------------------------------------------------------- tree mode

    def estimate_tree(self, op: LogicalOp) -> RelEstimate:
        children = tuple(self.estimate_tree(child) for child in op.children)
        return self.estimate(op, children)

    # --------------------------------------------------------------- dispatch

    def estimate(
        self, op: LogicalOp, child_estimates: Tuple[RelEstimate, ...]
    ) -> RelEstimate:
        handler = self._HANDLERS[op.kind]
        return handler(self, op, child_estimates)

    # ------------------------------------------------------------ selectivity

    def selectivity(self, predicate: Expr, estimate: RelEstimate) -> float:
        """Estimated fraction of rows satisfying ``predicate``."""
        if isinstance(predicate, Literal):
            if predicate.value is True:
                return 1.0
            return 0.0
        if isinstance(predicate, BoolExpr):
            parts = [self.selectivity(arg, estimate) for arg in predicate.args]
            if predicate.op is BoolConnective.AND:
                result = 1.0
                for part in parts:
                    result *= part
                return result
            result = 0.0
            for part in parts:
                result = result + part - result * part
            return result
        if isinstance(predicate, Not):
            return max(0.0, 1.0 - self.selectivity(predicate.arg, estimate))
        if isinstance(predicate, IsNull):
            return 0.1
        if isinstance(predicate, Comparison):
            return self._comparison_selectivity(predicate, estimate)
        return DEFAULT_SELECTIVITY

    def _comparison_selectivity(
        self, predicate: Comparison, estimate: RelEstimate
    ) -> float:
        left, right = predicate.left, predicate.right
        left_col = left.column if isinstance(left, ColumnRef) else None
        right_col = right.column if isinstance(right, ColumnRef) else None
        if predicate.op is ComparisonOp.EQ:
            if left_col and right_col:
                ndv = max(
                    estimate.distinct(left_col.cid),
                    estimate.distinct(right_col.cid),
                )
                return 1.0 / ndv
            column = left_col or right_col
            if column is not None and not referenced_columns(
                right if column is left_col else left
            ):
                return 1.0 / estimate.distinct(column.cid)
            return DEFAULT_SELECTIVITY
        if predicate.op is ComparisonOp.NE:
            return 0.9
        return RANGE_SELECTIVITY

    # ---------------------------------------------------------------- per-op

    def _estimate_get(self, op: Get, children) -> RelEstimate:
        if self.stats.has(op.table):
            table_stats = self.stats.get(op.table)
            rows = float(table_stats.row_count)
            ndv = {
                column.cid: float(table_stats.distinct(column.name))
                for column in op.columns
            }
        else:
            rows = float(StatsRepository.default_row_count())
            ndv = {column.cid: rows for column in op.columns}
        return RelEstimate(rows=max(rows, 0.0), ndv=ndv)

    def _estimate_select(self, op: Select, children) -> RelEstimate:
        (child,) = children
        fraction = self.selectivity(op.predicate, child)
        return RelEstimate(
            rows=child.rows * fraction, ndv=dict(child.ndv)
        ).capped()

    def _estimate_project(self, op: Project, children) -> RelEstimate:
        (child,) = children
        ndv: Dict[int, float] = {}
        for column, expr in op.outputs:
            if isinstance(expr, ColumnRef):
                ndv[column.cid] = child.distinct(expr.column.cid)
            else:
                ndv[column.cid] = child.rows
        return RelEstimate(rows=child.rows, ndv=ndv).capped()

    def _estimate_join(self, op: Join, children) -> RelEstimate:
        left, right = children
        kind = op.join_kind
        if kind in (JoinKind.SEMI, JoinKind.ANTI):
            rows = left.rows * SEMI_JOIN_FRACTION
            return RelEstimate(rows=rows, ndv=dict(left.ndv)).capped()
        combined = RelEstimate(
            rows=left.rows * right.rows, ndv={**left.ndv, **right.ndv}
        )
        if kind is JoinKind.CROSS:
            return combined.capped()
        fraction = self.selectivity(op.predicate, combined)
        rows = combined.rows * fraction
        if kind is JoinKind.LEFT_OUTER:
            rows = max(rows, left.rows)
        return RelEstimate(rows=rows, ndv=combined.ndv).capped()

    def _estimate_apply(self, op, children) -> RelEstimate:
        """Apply estimates like the semi/anti join it unnests into, so the
        cost difference between the nested and unnested forms comes from
        the physical operators, not the cardinality model."""
        left, _right = children
        rows = left.rows * SEMI_JOIN_FRACTION
        return RelEstimate(rows=rows, ndv=dict(left.ndv)).capped()

    def _estimate_gbagg(self, op: GbAgg, children) -> RelEstimate:
        (child,) = children
        if not op.group_by:
            rows = 1.0
        else:
            groups = 1.0
            for column in op.group_by:
                groups *= child.distinct(column.cid)
            rows = min(child.rows, groups)
        ndv = {column.cid: rows for column in op.output_columns}
        for column in op.group_by:
            ndv[column.cid] = min(child.distinct(column.cid), max(rows, 1.0))
        return RelEstimate(rows=max(rows, 0.0), ndv=ndv).capped()

    def _estimate_union_all(self, op, children) -> RelEstimate:
        left, right = children
        rows = left.rows + right.rows
        ndv = {}
        for out, lcol, rcol in zip(
            op.output_columns, op.left_columns, op.right_columns
        ):
            ndv[out.cid] = left.distinct(lcol.cid) + right.distinct(rcol.cid)
        return RelEstimate(rows=rows, ndv=ndv).capped()

    def _estimate_union(self, op, children) -> RelEstimate:
        merged = self._estimate_union_all(op, children)
        distinct_rows = 1.0
        for out in op.output_columns:
            distinct_rows *= merged.distinct(out.cid)
        rows = min(merged.rows, distinct_rows)
        return RelEstimate(rows=rows, ndv=merged.ndv).capped()

    def _estimate_intersect(self, op, children) -> RelEstimate:
        left, right = children
        rows = min(left.rows, right.rows) * 0.5
        ndv = {
            out.cid: left.distinct(lcol.cid)
            for out, lcol in zip(op.output_columns, op.left_columns)
        }
        return RelEstimate(rows=rows, ndv=ndv).capped()

    def _estimate_except(self, op, children) -> RelEstimate:
        left, right = children
        rows = max(left.rows * 0.5, left.rows - right.rows)
        ndv = {
            out.cid: left.distinct(lcol.cid)
            for out, lcol in zip(op.output_columns, op.left_columns)
        }
        return RelEstimate(rows=rows, ndv=ndv).capped()

    def _estimate_distinct(self, op, children) -> RelEstimate:
        (child,) = children
        distinct_rows = 1.0
        for cid in child.ndv:
            distinct_rows *= child.distinct(cid)
        rows = min(child.rows, distinct_rows)
        return RelEstimate(rows=rows, ndv=dict(child.ndv)).capped()

    def _estimate_sort(self, op, children) -> RelEstimate:
        (child,) = children
        return child

    def _estimate_limit(self, op: Limit, children) -> RelEstimate:
        (child,) = children
        rows = min(child.rows, float(op.count))
        return RelEstimate(rows=rows, ndv=dict(child.ndv)).capped()

    _HANDLERS = {
        OpKind.GET: _estimate_get,
        OpKind.SELECT: _estimate_select,
        OpKind.PROJECT: _estimate_project,
        OpKind.JOIN: _estimate_join,
        OpKind.APPLY: _estimate_apply,
        OpKind.GB_AGG: _estimate_gbagg,
        OpKind.UNION_ALL: _estimate_union_all,
        OpKind.UNION: _estimate_union,
        OpKind.INTERSECT: _estimate_intersect,
        OpKind.EXCEPT: _estimate_except,
        OpKind.DISTINCT: _estimate_distinct,
        OpKind.SORT: _estimate_sort,
        OpKind.LIMIT: _estimate_limit,
    }
