"""Stable structural fingerprints for logical query trees.

A fingerprint is a content hash over the tree's shape and arguments: operator
kinds, join kinds, predicates, projection lists, aggregate calls, sort keys
and limits.  Two trees that are structurally identical -- even when their
:class:`~repro.expr.expressions.Column` objects were bound in different
processes and therefore carry different ``cid`` values -- hash equal, because
column identities are *canonicalized*: every distinct column is replaced by
its first-encounter index in a deterministic pre-order walk.

The hash is a SHA-256 over an unambiguous token stream, so fingerprints are
stable across processes and interpreter invocations (no reliance on
``PYTHONHASHSEED`` or on Python's builtin ``hash``).  This is what makes
``(fingerprint, OptimizerConfig)`` usable as a cache key in
:class:`repro.service.PlanService`, including for its cross-run disk cache.

Fingerprints are defined for plain trees only (children are operators); memo
group expressions contain :class:`GroupRef` placeholders and are rejected.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from repro.expr.aggregates import AggregateCall
from repro.expr.expressions import (
    Arithmetic,
    BoolExpr,
    Column,
    ColumnRef,
    Comparison,
    Expr,
    IsNull,
    Literal,
    Not,
)
from repro.logical.operators import (
    Apply,
    Except,
    GbAgg,
    Get,
    GroupRef,
    Intersect,
    Join,
    Limit,
    LogicalOp,
    Project,
    Select,
    Sort,
    Union,
    UnionAll,
)

#: Token-stream separator; cannot occur inside any emitted token because all
#: free-form text (names, literal reprs) is length-prefixed.
_SEP = "\x1f"


class FingerprintError(ValueError):
    """Raised when a fingerprint is requested for a non-tree (memo) node."""


class _Writer:
    """Accumulates an unambiguous token stream for hashing."""

    def __init__(self) -> None:
        self.tokens: List[str] = []
        self._canonical: Dict[int, int] = {}

    def tag(self, value: str) -> None:
        """A fixed vocabulary token (operator/expression kind, bracket)."""
        self.tokens.append(value)

    def text(self, value: str) -> None:
        """Free-form text, length-prefixed so adjacent tokens cannot merge."""
        self.tokens.append(f"{len(value)}:{value}")

    def column(self, column: Column) -> None:
        """A column by canonical first-encounter index plus its type facts."""
        index = self._canonical.get(column.cid)
        if index is None:
            index = len(self._canonical)
            self._canonical[column.cid] = index
        self.tokens.append(
            f"c{index}|{column.data_type.value}|{int(column.nullable)}"
        )

    def digest(self) -> str:
        payload = _SEP.join(self.tokens).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()


# ------------------------------------------------------------- expressions


def _emit_expr(expr: Expr, writer: _Writer) -> None:
    if isinstance(expr, ColumnRef):
        writer.tag("ref")
        writer.column(expr.column)
    elif isinstance(expr, Literal):
        writer.tag("lit")
        writer.text(expr.data_type.value)
        writer.text(f"{type(expr.value).__name__}:{expr.value!r}")
    elif isinstance(expr, Comparison):
        writer.tag("cmp")
        writer.text(expr.op.value)
        _emit_expr(expr.left, writer)
        _emit_expr(expr.right, writer)
    elif isinstance(expr, BoolExpr):
        writer.tag("bool")
        writer.text(expr.op.value)
        writer.tag(str(len(expr.args)))
        for arg in expr.args:
            _emit_expr(arg, writer)
    elif isinstance(expr, Not):
        writer.tag("not")
        _emit_expr(expr.arg, writer)
    elif isinstance(expr, IsNull):
        writer.tag("isnull")
        _emit_expr(expr.arg, writer)
    elif isinstance(expr, Arithmetic):
        writer.tag("arith")
        writer.text(expr.op.value)
        _emit_expr(expr.left, writer)
        _emit_expr(expr.right, writer)
    else:
        raise TypeError(f"unknown expression node {type(expr).__name__}")


def _emit_aggregate(call: AggregateCall, writer: _Writer) -> None:
    writer.tag("agg")
    writer.text(call.function.value)
    if call.argument is None:
        writer.tag("*")
    else:
        _emit_expr(call.argument, writer)


# --------------------------------------------------------------- operators


def _emit_op(op: LogicalOp, writer: _Writer) -> None:
    if isinstance(op, GroupRef) or not isinstance(op, LogicalOp):
        raise FingerprintError(
            "fingerprints are defined for plain logical trees only "
            f"(found {op!r})"
        )
    writer.tag("(")
    writer.tag(op.kind.value)

    if isinstance(op, Get):
        writer.text(op.table)
        writer.text(op.alias)
        for column in op.columns:
            writer.column(column)
    elif isinstance(op, Select):
        _emit_expr(op.predicate, writer)
    elif isinstance(op, Project):
        writer.tag(str(len(op.outputs)))
        for column, expr in op.outputs:
            writer.column(column)
            _emit_expr(expr, writer)
    elif isinstance(op, Join):
        writer.text(op.join_kind.value)
        _emit_expr(op.predicate, writer)
    elif isinstance(op, Apply):
        writer.text(op.apply_kind.value)
        _emit_expr(op.predicate, writer)
    elif isinstance(op, GbAgg):
        writer.text(op.phase)
        writer.tag(str(len(op.group_by)))
        for column in op.group_by:
            writer.column(column)
        writer.tag(str(len(op.aggregates)))
        for column, call in op.aggregates:
            writer.column(column)
            _emit_aggregate(call, writer)
    elif isinstance(op, (UnionAll, Union, Intersect, Except)):
        for column in op.output_columns:
            writer.column(column)
        writer.tag("/")
        for column in op.left_columns:
            writer.column(column)
        writer.tag("/")
        for column in op.right_columns:
            writer.column(column)
    elif isinstance(op, Sort):
        writer.tag(str(len(op.keys)))
        for key in op.keys:
            writer.column(key.column)
            writer.tag("a" if key.ascending else "d")
    elif isinstance(op, Limit):
        writer.tag(str(op.count))
    # Distinct carries no arguments beyond its kind.

    for child in op.children:
        _emit_op(child, writer)
    writer.tag(")")


def fingerprint(tree: LogicalOp) -> str:
    """SHA-256 structural fingerprint of ``tree`` (hex string).

    Equal trees (same shape, arguments and column-identity structure) hash
    equal regardless of the absolute ``cid`` values their columns carry;
    any change to an operator kind, join kind, predicate, projection,
    aggregate, column order, sort key or limit changes the hash.
    """
    writer = _Writer()
    _emit_op(tree, writer)
    return writer.digest()
