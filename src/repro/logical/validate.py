"""Structural validation of logical query trees.

The query generators build trees programmatically; this validator catches
construction bugs early (dangling column references, misaligned set-operation
inputs, duplicate column ids in a schema) instead of letting them surface as
confusing optimizer or executor failures.  Every generated query is validated
before being handed to the optimizer.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.catalog.schema import Catalog
from repro.expr.expressions import Column, Expr, referenced_columns
from repro.logical.operators import (
    Apply,
    GbAgg,
    Get,
    Join,
    JoinKind,
    LogicalOp,
    Project,
    Select,
    Sort,
    is_set_op,
)


class ValidationError(Exception):
    """Raised when a logical tree is structurally invalid."""


def _check_refs(
    expr: Expr, visible: FrozenSet[int], where: str
) -> None:
    for column in referenced_columns(expr):
        if column.cid not in visible:
            raise ValidationError(
                f"{where}: column {column.qualified_name}#{column.cid} "
                "is not visible from the operator's inputs"
            )


def _ids(columns: Tuple[Column, ...]) -> FrozenSet[int]:
    return frozenset(column.cid for column in columns)


def validate_tree(op: LogicalOp, catalog: Catalog) -> Tuple[Column, ...]:
    """Validate ``op`` recursively; returns its output columns.

    Raises :class:`ValidationError` on the first structural problem.
    """
    child_outputs = tuple(
        validate_tree(child, catalog) for child in op.children
    )

    if isinstance(op, Get):
        table = catalog.table(op.table)
        if len(op.columns) != len(table.columns):
            raise ValidationError(
                f"Get({op.table}): bound {len(op.columns)} columns, table "
                f"has {len(table.columns)}"
            )
        for bound, defined in zip(op.columns, table.columns):
            if bound.name != defined.name:
                raise ValidationError(
                    f"Get({op.table}): bound column {bound.name!r} does not "
                    f"match table column {defined.name!r}"
                )
        outputs = op.columns

    elif isinstance(op, Select):
        (child,) = child_outputs
        _check_refs(op.predicate, _ids(child), "Select predicate")
        outputs = child

    elif isinstance(op, Project):
        (child,) = child_outputs
        visible = _ids(child)
        seen = set()
        for column, expr in op.outputs:
            _check_refs(expr, visible, f"Project output {column.name}")
            if column.cid in seen:
                raise ValidationError(
                    f"Project: duplicate output column id {column.cid}"
                )
            seen.add(column.cid)
        outputs = op.output_columns

    elif isinstance(op, Join):
        left, right = child_outputs
        overlap = _ids(left) & _ids(right)
        if overlap:
            raise ValidationError(
                f"Join: inputs share column ids {sorted(overlap)}"
            )
        _check_refs(op.predicate, _ids(left) | _ids(right), "Join predicate")
        if op.join_kind in (JoinKind.SEMI, JoinKind.ANTI):
            outputs = left
        else:
            outputs = left + right

    elif isinstance(op, Apply):
        left, right = child_outputs
        overlap = _ids(left) & _ids(right)
        if overlap:
            raise ValidationError(
                f"Apply: inputs share column ids {sorted(overlap)}"
            )
        _check_refs(
            op.predicate, _ids(left) | _ids(right), "Apply predicate"
        )
        outputs = left

    elif isinstance(op, GbAgg):
        (child,) = child_outputs
        visible = _ids(child)
        for column in op.group_by:
            if column.cid not in visible:
                raise ValidationError(
                    f"GbAgg: grouping column {column.qualified_name} not in "
                    "input"
                )
        seen = {column.cid for column in op.group_by}
        for column, call in op.aggregates:
            if call.argument is not None:
                _check_refs(
                    call.argument, visible, f"aggregate {column.name}"
                )
            if column.cid in seen:
                raise ValidationError(
                    f"GbAgg: duplicate output column id {column.cid}"
                )
            seen.add(column.cid)
        outputs = op.output_columns

    elif is_set_op(op):
        left, right = child_outputs
        # Branch columns select (a subset of) each input's columns, one per
        # output position; the executor projects each branch onto them.
        if not _ids(op.left_columns) <= _ids(left):
            raise ValidationError(
                f"{op.kind.value}: left_columns not drawn from left input"
            )
        if not _ids(op.right_columns) <= _ids(right):
            raise ValidationError(
                f"{op.kind.value}: right_columns not drawn from right input"
            )
        widths = {
            len(op.output_columns),
            len(op.left_columns),
            len(op.right_columns),
        }
        if len(widths) != 1:
            raise ValidationError(f"{op.kind.value}: column count mismatch")
        for out, lcol, rcol in zip(
            op.output_columns, op.left_columns, op.right_columns
        ):
            if out.data_type is not lcol.data_type and not (
                out.data_type.is_numeric and lcol.data_type.is_numeric
            ):
                raise ValidationError(
                    f"{op.kind.value}: output {out.name} type mismatch with "
                    "left input"
                )
            if lcol.data_type is not rcol.data_type and not (
                lcol.data_type.is_numeric and rcol.data_type.is_numeric
            ):
                raise ValidationError(
                    f"{op.kind.value}: branch types not union-compatible for "
                    f"{out.name}"
                )
        outputs = op.output_columns

    elif isinstance(op, Sort):
        (child,) = child_outputs
        visible = _ids(child)
        for key in op.keys:
            if key.column.cid not in visible:
                raise ValidationError(
                    f"Sort: key column {key.column.qualified_name} not in "
                    "input"
                )
        outputs = child

    else:  # Distinct, Limit
        (child,) = child_outputs
        outputs = child

    return outputs
