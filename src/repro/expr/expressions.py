"""Scalar expression trees.

Expressions reference columns through :class:`Column` objects, which carry a
process-unique integer id.  Identity by id (rather than by name) is what lets
transformation rules move expressions freely across operators without name
capture -- the same design used by Cascades-style optimizers, where columns
are bound once when a ``Get`` is instantiated and referenced by id thereafter.

All expression nodes are immutable and hashable so they can live inside memo
group expressions and be used as dictionary keys.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

from repro.catalog.schema import DataType

_column_ids = itertools.count(1)


def _next_column_id() -> int:
    return next(_column_ids)


@dataclass(frozen=True, eq=False)
class Column:
    """A bound column: unique id plus display metadata.

    Equality and hashing are by ``cid`` alone; two Column objects with the
    same id are the same column regardless of display name.
    """

    name: str
    data_type: DataType
    nullable: bool = True
    table: Optional[str] = None
    cid: int = field(default_factory=_next_column_id)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Column) and other.cid == self.cid

    def __hash__(self) -> int:
        return hash(self.cid)

    @property
    def qualified_name(self) -> str:
        if self.table:
            return f"{self.table}.{self.name}"
        return self.name

    def __repr__(self) -> str:
        return f"Column({self.qualified_name}#{self.cid})"


class ComparisonOp(enum.Enum):
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def flipped(self) -> "ComparisonOp":
        """The operator with operand sides swapped (e.g. ``<`` -> ``>``)."""
        return _FLIPPED[self]

    def negated(self) -> "ComparisonOp":
        return _NEGATED[self]


_FLIPPED = {
    ComparisonOp.EQ: ComparisonOp.EQ,
    ComparisonOp.NE: ComparisonOp.NE,
    ComparisonOp.LT: ComparisonOp.GT,
    ComparisonOp.LE: ComparisonOp.GE,
    ComparisonOp.GT: ComparisonOp.LT,
    ComparisonOp.GE: ComparisonOp.LE,
}

_NEGATED = {
    ComparisonOp.EQ: ComparisonOp.NE,
    ComparisonOp.NE: ComparisonOp.EQ,
    ComparisonOp.LT: ComparisonOp.GE,
    ComparisonOp.LE: ComparisonOp.GT,
    ComparisonOp.GT: ComparisonOp.LE,
    ComparisonOp.GE: ComparisonOp.LT,
}


class ArithmeticOp(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"


class BoolConnective(enum.Enum):
    AND = "AND"
    OR = "OR"


class Expr:
    """Base class for all scalar expressions."""

    __slots__ = ()

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal over this expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A reference to a bound column."""

    column: Column

    def __str__(self) -> str:
        return self.column.qualified_name


@dataclass(frozen=True)
class Literal(Expr):
    """A typed constant; ``value is None`` represents SQL NULL."""

    value: object
    data_type: DataType

    def __str__(self) -> str:
        if self.value is None:
            return "NULL"
        if self.data_type is DataType.STRING:
            escaped = str(self.value).replace("'", "''")
            return f"'{escaped}'"
        if self.data_type is DataType.BOOL:
            return "TRUE" if self.value else "FALSE"
        return str(self.value)


TRUE = Literal(True, DataType.BOOL)
FALSE = Literal(False, DataType.BOOL)
NULL_BOOL = Literal(None, DataType.BOOL)


@dataclass(frozen=True)
class Comparison(Expr):
    """Binary comparison with SQL NULL semantics (NULL operand -> UNKNOWN)."""

    op: ComparisonOp
    left: Expr
    right: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{self.left} {self.op.value} {self.right}"


@dataclass(frozen=True)
class BoolExpr(Expr):
    """N-ary AND / OR with Kleene three-valued semantics."""

    op: BoolConnective
    args: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        if len(self.args) < 2:
            raise ValueError(f"{self.op.value} needs at least 2 arguments")

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        sep = f" {self.op.value} "
        return "(" + sep.join(str(arg) for arg in self.args) + ")"


@dataclass(frozen=True)
class Not(Expr):
    arg: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.arg,)

    def __str__(self) -> str:
        return f"NOT ({self.arg})"


@dataclass(frozen=True)
class IsNull(Expr):
    """``arg IS NULL`` -- always two-valued (never UNKNOWN)."""

    arg: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.arg,)

    def __str__(self) -> str:
        return f"{self.arg} IS NULL"


@dataclass(frozen=True)
class Arithmetic(Expr):
    op: ArithmeticOp
    left: Expr
    right: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op.value} {self.right})"


# --------------------------------------------------------------------- helpers


def conjunction(parts) -> Expr:
    """AND together ``parts`` (empty -> TRUE, singleton -> the part itself)."""
    parts = [part for part in parts if part is not None]
    flattened = []
    for part in parts:
        if isinstance(part, BoolExpr) and part.op is BoolConnective.AND:
            flattened.extend(part.args)
        else:
            flattened.append(part)
    flattened = [part for part in flattened if part != TRUE]
    if not flattened:
        return TRUE
    if len(flattened) == 1:
        return flattened[0]
    return BoolExpr(BoolConnective.AND, tuple(flattened))


def conjuncts(expr: Expr) -> Tuple[Expr, ...]:
    """Split a predicate into its top-level AND-ed conjuncts."""
    if isinstance(expr, BoolExpr) and expr.op is BoolConnective.AND:
        result = []
        for arg in expr.args:
            result.extend(conjuncts(arg))
        return tuple(result)
    return (expr,)


def referenced_columns(expr: Expr) -> frozenset:
    """The set of :class:`Column` objects referenced anywhere in ``expr``."""
    return frozenset(
        node.column for node in expr.walk() if isinstance(node, ColumnRef)
    )


def substitute_columns(expr: Expr, mapping) -> Expr:
    """Rewrite ``expr`` replacing each column per ``mapping`` (Column->Column
    or Column->Expr).  Columns absent from the mapping are left untouched."""
    if isinstance(expr, ColumnRef):
        replacement = mapping.get(expr.column)
        if replacement is None:
            return expr
        if isinstance(replacement, Expr):
            return replacement
        return ColumnRef(replacement)
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, Comparison):
        return Comparison(
            expr.op,
            substitute_columns(expr.left, mapping),
            substitute_columns(expr.right, mapping),
        )
    if isinstance(expr, BoolExpr):
        return BoolExpr(
            expr.op,
            tuple(substitute_columns(arg, mapping) for arg in expr.args),
        )
    if isinstance(expr, Not):
        return Not(substitute_columns(expr.arg, mapping))
    if isinstance(expr, IsNull):
        return IsNull(substitute_columns(expr.arg, mapping))
    if isinstance(expr, Arithmetic):
        return Arithmetic(
            expr.op,
            substitute_columns(expr.left, mapping),
            substitute_columns(expr.right, mapping),
        )
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def expression_type(expr: Expr) -> DataType:
    """Infer the result type of ``expr``."""
    if isinstance(expr, ColumnRef):
        return expr.column.data_type
    if isinstance(expr, Literal):
        return expr.data_type
    if isinstance(expr, (Comparison, BoolExpr, Not, IsNull)):
        return DataType.BOOL
    if isinstance(expr, Arithmetic):
        left = expression_type(expr.left)
        right = expression_type(expr.right)
        if DataType.FLOAT in (left, right) or expr.op is ArithmeticOp.DIV:
            return DataType.FLOAT
        return DataType.INT
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def is_nullable(expr: Expr, non_null_columns: frozenset = frozenset()) -> bool:
    """Conservative nullability: can ``expr`` evaluate to NULL?

    ``non_null_columns`` are columns known NOT NULL in the current context.
    Boolean-valued comparisons can yield UNKNOWN (treated as nullable);
    IS NULL never can.
    """
    if isinstance(expr, ColumnRef):
        if expr.column in non_null_columns:
            return False
        return expr.column.nullable
    if isinstance(expr, Literal):
        return expr.value is None
    if isinstance(expr, IsNull):
        return False
    if isinstance(expr, (Comparison, Arithmetic)):
        return is_nullable(expr.left, non_null_columns) or is_nullable(
            expr.right, non_null_columns
        )
    if isinstance(expr, Not):
        return is_nullable(expr.arg, non_null_columns)
    if isinstance(expr, BoolExpr):
        return any(is_nullable(arg, non_null_columns) for arg in expr.args)
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def is_null_rejecting(expr: Expr, columns: frozenset) -> bool:
    """True if ``expr`` cannot evaluate to TRUE when every column in
    ``columns`` that it references is NULL.

    This is the precondition for simplifying an outer join to an inner join:
    a null-rejecting predicate above a left outer join filters out all
    NULL-extended rows, making the outer join equivalent to an inner join.
    The test is conservative (may return False for predicates that are in
    fact null-rejecting).
    """
    if isinstance(expr, Comparison):
        refs = referenced_columns(expr)
        return bool(refs & columns)
    if isinstance(expr, BoolExpr):
        if expr.op is BoolConnective.AND:
            return any(is_null_rejecting(arg, columns) for arg in expr.args)
        return all(is_null_rejecting(arg, columns) for arg in expr.args)
    if isinstance(expr, Not):
        # NOT(x IS NULL) rejects NULLs in x's columns.
        if isinstance(expr.arg, IsNull):
            refs = referenced_columns(expr.arg)
            return bool(refs) and refs <= columns
        return False
    return False
