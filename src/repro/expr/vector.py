"""Column-wise expression evaluation for the columnar executor.

:func:`compile_expr_vector` mirrors :func:`repro.expr.eval.compile_expr`
but operates on whole columns at once: a compiled expression is a closure
``(columns, n) -> column`` where ``columns`` is the operator input as a
struct-of-arrays (one Python list per column, all of length ``n``) and the
result is a list of ``n`` values.  Semantics are identical to the row
interpreter — SQL three-valued logic, NULL-propagating comparisons and
arithmetic, division by zero yielding NULL — and the executor differential
suite asserts the two agree on every generated plan.

Evaluator outputs are read-only by convention: a ``ColumnRef`` returns the
*input column list itself* (no copy), so callers must never mutate a
returned column.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.expr.eval import _COMPARATORS, Layout
from repro.expr.expressions import (
    Arithmetic,
    ArithmeticOp,
    BoolConnective,
    BoolExpr,
    ColumnRef,
    Comparison,
    Expr,
    IsNull,
    Literal,
    Not,
)

#: A compiled vector expression: ``(columns, n) -> column of n values``.
VectorCompiled = Callable[[Sequence[list], int], list]


def compile_expr_vector(expr: Expr, layout: Layout) -> VectorCompiled:
    """Compile ``expr`` into a column-wise evaluator over ``layout``."""
    if isinstance(expr, ColumnRef):
        index = layout[expr.column.cid]
        return lambda cols, n: cols[index]
    if isinstance(expr, Literal):
        value = expr.value
        return lambda cols, n: [value] * n
    if isinstance(expr, Comparison):
        left = compile_expr_vector(expr.left, layout)
        right = compile_expr_vector(expr.right, layout)
        compare = _COMPARATORS[expr.op]

        def _compare(cols, n):
            return [
                None if a is None or b is None else compare(a, b)
                for a, b in zip(left(cols, n), right(cols, n))
            ]

        return _compare
    if isinstance(expr, BoolExpr):
        parts = [compile_expr_vector(arg, layout) for arg in expr.args]
        if expr.op is BoolConnective.AND:

            def _and(cols, n):
                out = parts[0](cols, n)
                for part in parts[1:]:
                    out = [
                        False
                        if a is False or b is False
                        else (None if a is None or b is None else True)
                        for a, b in zip(out, part(cols, n))
                    ]
                return out

            return _and

        def _or(cols, n):
            out = parts[0](cols, n)
            for part in parts[1:]:
                out = [
                    True
                    if a is True or b is True
                    else (None if a is None or b is None else False)
                    for a, b in zip(out, part(cols, n))
                ]
            return out

        return _or
    if isinstance(expr, Not):
        arg = compile_expr_vector(expr.arg, layout)

        def _not(cols, n):
            return [None if v is None else not v for v in arg(cols, n)]

        return _not
    if isinstance(expr, IsNull):
        arg = compile_expr_vector(expr.arg, layout)
        return lambda cols, n: [v is None for v in arg(cols, n)]
    if isinstance(expr, Arithmetic):
        left = compile_expr_vector(expr.left, layout)
        right = compile_expr_vector(expr.right, layout)
        op = expr.op
        if op is ArithmeticOp.ADD:
            combine = lambda a, b: a + b  # noqa: E731
        elif op is ArithmeticOp.SUB:
            combine = lambda a, b: a - b  # noqa: E731
        elif op is ArithmeticOp.MUL:
            combine = lambda a, b: a * b  # noqa: E731
        else:

            def _arith_div(cols, n):
                return [
                    None if a is None or b is None or b == 0 else a / b
                    for a, b in zip(left(cols, n), right(cols, n))
                ]

            return _arith_div

        def _arith(cols, n):
            return [
                None if a is None or b is None else combine(a, b)
                for a, b in zip(left(cols, n), right(cols, n))
            ]

        return _arith
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def compile_selection_vector(
    expr: Expr, layout: Layout
) -> Callable[[Sequence[list], int], List[int]]:
    """Compile a predicate into a selection builder.

    Returns the indices of rows where the predicate is TRUE (UNKNOWN
    counts as False, matching :func:`repro.expr.eval.compile_predicate`).
    """
    compiled = compile_expr_vector(expr, layout)

    def _select(cols, n):
        return [i for i, v in enumerate(compiled(cols, n)) if v is True]

    return _select
