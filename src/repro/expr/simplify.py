"""Constant folding and predicate simplification.

Used by the PredicateSimplification transformation rule and by the SQL
generator (to avoid emitting vacuous ``WHERE TRUE`` clauses).  Folding obeys
the same three-valued semantics as evaluation: ``x AND FALSE`` is FALSE,
``x AND TRUE`` is ``x``, ``x OR NULL`` is *not* ``x`` (it maps UNKNOWN/FALSE
inputs differently), so only sound rewrites are applied.
"""

from __future__ import annotations

from repro.expr.eval import evaluate
from repro.expr.expressions import (
    FALSE,
    TRUE,
    Arithmetic,
    BoolConnective,
    BoolExpr,
    Comparison,
    Expr,
    IsNull,
    Literal,
    Not,
    expression_type,
    referenced_columns,
)


def is_constant(expr: Expr) -> bool:
    """True when ``expr`` references no columns."""
    return not referenced_columns(expr)


def fold_constants(expr: Expr) -> Expr:
    """Evaluate column-free subtrees down to literals."""
    if isinstance(expr, Literal):
        return expr
    if is_constant(expr):
        value = evaluate(expr, (), {})
        return Literal(value, expression_type(expr))
    if isinstance(expr, Comparison):
        return Comparison(
            expr.op, fold_constants(expr.left), fold_constants(expr.right)
        )
    if isinstance(expr, Arithmetic):
        return Arithmetic(
            expr.op, fold_constants(expr.left), fold_constants(expr.right)
        )
    if isinstance(expr, Not):
        return Not(fold_constants(expr.arg))
    if isinstance(expr, IsNull):
        return IsNull(fold_constants(expr.arg))
    if isinstance(expr, BoolExpr):
        return _fold_bool(expr)
    return expr


def _fold_bool(expr: BoolExpr) -> Expr:
    args = [fold_constants(arg) for arg in expr.args]
    if expr.op is BoolConnective.AND:
        # FALSE dominates; TRUE is the identity.
        if any(arg == FALSE for arg in args):
            return FALSE
        args = [arg for arg in args if arg != TRUE]
        if not args:
            return TRUE
    else:
        # TRUE dominates; FALSE is the identity.
        if any(arg == TRUE for arg in args):
            return TRUE
        args = [arg for arg in args if arg != FALSE]
        if not args:
            return FALSE
    if len(args) == 1:
        return args[0]
    return BoolExpr(expr.op, tuple(args))


def simplify_predicate(expr: Expr) -> Expr:
    """Fold constants and apply a few sound logical rewrites."""
    folded = fold_constants(expr)
    if isinstance(folded, Not):
        inner = folded.arg
        # Double negation.
        if isinstance(inner, Not):
            return simplify_predicate(inner.arg)
        # De-invert comparisons only when neither side is nullable is NOT
        # required here: NOT(a < b) == a >= b holds in 3VL because both are
        # UNKNOWN exactly when an operand is NULL.
        if isinstance(inner, Comparison):
            return Comparison(inner.op.negated(), inner.left, inner.right)
    return folded
