"""Expression evaluation with SQL three-valued logic.

Two entry points:

* :func:`evaluate` -- interpret an expression against a row given a column
  layout (column id -> tuple position).  Simple and used in tests.
* :func:`compile_expr` -- compile an expression into a Python closure for the
  hot path inside physical operators.  Both implement identical semantics;
  a property-based test asserts they agree.

NULL semantics: any arithmetic or comparison with a NULL operand yields NULL
(UNKNOWN for booleans); AND/OR follow Kleene logic; ``IS NULL`` is always
two-valued.  Division by zero yields NULL, keeping evaluation total -- this
mirrors engines configured with ANSI warnings off and keeps randomly
generated queries executable.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

from repro.expr.expressions import (
    Arithmetic,
    ArithmeticOp,
    BoolConnective,
    BoolExpr,
    Column,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expr,
    IsNull,
    Literal,
    Not,
)

#: Maps a column id to its position inside a row tuple.
Layout = Dict[int, int]


def layout_of(columns: Sequence[Column]) -> Layout:
    """Build a :data:`Layout` from an ordered column list."""
    return {column.cid: index for index, column in enumerate(columns)}


_COMPARATORS = {
    ComparisonOp.EQ: lambda a, b: a == b,
    ComparisonOp.NE: lambda a, b: a != b,
    ComparisonOp.LT: lambda a, b: a < b,
    ComparisonOp.LE: lambda a, b: a <= b,
    ComparisonOp.GT: lambda a, b: a > b,
    ComparisonOp.GE: lambda a, b: a >= b,
}


def _arith(op: ArithmeticOp, left, right):
    if left is None or right is None:
        return None
    if op is ArithmeticOp.ADD:
        return left + right
    if op is ArithmeticOp.SUB:
        return left - right
    if op is ArithmeticOp.MUL:
        return left * right
    if right == 0:
        return None
    return left / right


def evaluate(expr: Expr, row: Tuple, layout: Layout):
    """Interpret ``expr`` against ``row``; returns a value or ``None``."""
    if isinstance(expr, ColumnRef):
        return row[layout[expr.column.cid]]
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Comparison):
        left = evaluate(expr.left, row, layout)
        right = evaluate(expr.right, row, layout)
        if left is None or right is None:
            return None
        return _COMPARATORS[expr.op](left, right)
    if isinstance(expr, BoolExpr):
        if expr.op is BoolConnective.AND:
            saw_null = False
            for arg in expr.args:
                value = evaluate(arg, row, layout)
                if value is False:
                    return False
                if value is None:
                    saw_null = True
            return None if saw_null else True
        saw_null = False
        for arg in expr.args:
            value = evaluate(arg, row, layout)
            if value is True:
                return True
            if value is None:
                saw_null = True
        return None if saw_null else False
    if isinstance(expr, Not):
        value = evaluate(expr.arg, row, layout)
        if value is None:
            return None
        return not value
    if isinstance(expr, IsNull):
        return evaluate(expr.arg, row, layout) is None
    if isinstance(expr, Arithmetic):
        left = evaluate(expr.left, row, layout)
        right = evaluate(expr.right, row, layout)
        return _arith(expr.op, left, right)
    raise TypeError(f"unknown expression node {type(expr).__name__}")


Compiled = Callable[[Tuple], object]


def compile_expr(expr: Expr, layout: Layout) -> Compiled:
    """Compile ``expr`` to a closure ``row -> value`` over ``layout``."""
    if isinstance(expr, ColumnRef):
        index = layout[expr.column.cid]
        return lambda row: row[index]
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, Comparison):
        left = compile_expr(expr.left, layout)
        right = compile_expr(expr.right, layout)
        compare = _COMPARATORS[expr.op]

        def _compare(row):
            a = left(row)
            if a is None:
                return None
            b = right(row)
            if b is None:
                return None
            return compare(a, b)

        return _compare
    if isinstance(expr, BoolExpr):
        parts = [compile_expr(arg, layout) for arg in expr.args]
        if expr.op is BoolConnective.AND:

            def _and(row):
                saw_null = False
                for part in parts:
                    value = part(row)
                    if value is False:
                        return False
                    if value is None:
                        saw_null = True
                return None if saw_null else True

            return _and

        def _or(row):
            saw_null = False
            for part in parts:
                value = part(row)
                if value is True:
                    return True
                if value is None:
                    saw_null = True
            return None if saw_null else False

        return _or
    if isinstance(expr, Not):
        arg = compile_expr(expr.arg, layout)

        def _not(row):
            value = arg(row)
            if value is None:
                return None
            return not value

        return _not
    if isinstance(expr, IsNull):
        arg = compile_expr(expr.arg, layout)
        return lambda row: arg(row) is None
    if isinstance(expr, Arithmetic):
        left = compile_expr(expr.left, layout)
        right = compile_expr(expr.right, layout)
        op = expr.op
        return lambda row: _arith(op, left(row), right(row))
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def compile_predicate(expr: Expr, layout: Layout) -> Callable[[Tuple], bool]:
    """Compile a boolean expression into a filter: UNKNOWN counts as False."""
    compiled = compile_expr(expr, layout)
    return lambda row: compiled(row) is True
