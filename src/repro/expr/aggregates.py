"""Aggregate functions and their accumulators.

Aggregates appear only inside Group-By/Aggregate operators (never nested in
scalar expressions).  Each function exposes an accumulator protocol used by
the physical aggregation operators, plus the metadata the eager/lazy
aggregation transformation rules need: whether the aggregate is
*decomposable* (can be computed as partial aggregates combined by a second
aggregation) and what the combining function is -- e.g. partial SUMs combine
with SUM, partial COUNTs combine with SUM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.catalog.schema import DataType
from repro.expr.expressions import Expr, expression_type


class AggregateFunction(enum.Enum):
    COUNT = "COUNT"        # COUNT(expr): non-null inputs
    COUNT_STAR = "COUNT(*)"
    SUM = "SUM"
    MIN = "MIN"
    MAX = "MAX"
    AVG = "AVG"

    @property
    def is_decomposable(self) -> bool:
        """Can this aggregate be split into partial + combining phases?

        AVG is only decomposable via a SUM/COUNT rewrite, which the
        GbAggSplit rule performs explicitly, so it reports False here.
        """
        return self is not AggregateFunction.AVG

    @property
    def combiner(self) -> "AggregateFunction":
        """Function that combines partial results of this aggregate."""
        if self in (AggregateFunction.COUNT, AggregateFunction.COUNT_STAR):
            return AggregateFunction.SUM
        if self is AggregateFunction.AVG:
            raise ValueError("AVG is not directly decomposable")
        return self


@dataclass(frozen=True)
class AggregateCall:
    """One aggregate invocation: function plus optional argument expression.

    ``argument`` is ``None`` exactly for COUNT(*).
    """

    function: AggregateFunction
    argument: Optional[Expr] = None

    def __post_init__(self) -> None:
        if self.function is AggregateFunction.COUNT_STAR:
            if self.argument is not None:
                raise ValueError("COUNT(*) takes no argument")
        elif self.argument is None:
            raise ValueError(f"{self.function.value} requires an argument")

    def result_type(self) -> DataType:
        if self.function in (
            AggregateFunction.COUNT,
            AggregateFunction.COUNT_STAR,
        ):
            return DataType.INT
        if self.function is AggregateFunction.AVG:
            return DataType.FLOAT
        assert self.argument is not None
        arg_type = expression_type(self.argument)
        if self.function is AggregateFunction.SUM and arg_type is DataType.INT:
            return DataType.INT
        return arg_type

    def result_nullable(self) -> bool:
        """COUNT variants return 0 (never NULL); the rest can return NULL."""
        return self.function not in (
            AggregateFunction.COUNT,
            AggregateFunction.COUNT_STAR,
        )

    def __str__(self) -> str:
        if self.function is AggregateFunction.COUNT_STAR:
            return "COUNT(*)"
        return f"{self.function.value}({self.argument})"


class Accumulator:
    """Streaming accumulator for one aggregate over one group."""

    __slots__ = ("function", "_count", "_sum", "_min", "_max")

    def __init__(self, function: AggregateFunction) -> None:
        self.function = function
        self._count = 0
        self._sum = 0
        self._min = None
        self._max = None

    def add(self, value: object) -> None:
        """Feed one input value (already-evaluated argument, or a dummy for
        COUNT(*)).  NULL inputs are ignored except by COUNT(*)."""
        if self.function is AggregateFunction.COUNT_STAR:
            self._count += 1
            return
        if value is None:
            return
        self._count += 1
        if self.function in (AggregateFunction.SUM, AggregateFunction.AVG):
            self._sum += value
        elif self.function is AggregateFunction.MIN:
            if self._min is None or value < self._min:
                self._min = value
        elif self.function is AggregateFunction.MAX:
            if self._max is None or value > self._max:
                self._max = value

    def result(self) -> object:
        """Final value for the group (SQL semantics for empty input)."""
        if self.function in (
            AggregateFunction.COUNT,
            AggregateFunction.COUNT_STAR,
        ):
            return self._count
        if self._count == 0:
            return None
        if self.function is AggregateFunction.SUM:
            return self._sum
        if self.function is AggregateFunction.AVG:
            return self._sum / self._count
        if self.function is AggregateFunction.MIN:
            return self._min
        return self._max
