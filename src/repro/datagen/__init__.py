"""Deterministic synthetic data generation."""

from repro.datagen.generator import DataGenerator, GenerationProfile

__all__ = ["DataGenerator", "GenerationProfile"]
