"""Deterministic synthetic data generation driven by the catalog.

Given a :class:`TableDef` and a seeded RNG, :class:`DataGenerator` produces
rows that respect the schema: primary/unique keys are genuinely unique,
foreign keys reference existing rows of the referenced table, NOT NULL is
honoured, and nullable columns receive NULLs at a configurable rate (NULLs
matter: several outer-join transformation rules are only distinguishable from
buggy variants on data containing NULLs).

Generation is topologically ordered over foreign-key dependencies so that
referenced tables are populated first.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.catalog.schema import Catalog, ColumnDef, DataType, SchemaError, TableDef
from repro.storage.database import Database


@dataclass
class GenerationProfile:
    """Tunables for synthetic data generation."""

    null_rate: float = 0.08
    int_range: Tuple[int, int] = (0, 200)
    float_range: Tuple[float, float] = (0.0, 1000.0)
    string_length: int = 8
    string_pool_size: int = 40
    date_range: Tuple[int, int] = (730_000, 731_000)  # ordinal days
    #: Fraction of a referenced table's key values that foreign keys draw
    #: from.  Keeping this below 1.0 guarantees some parent rows have no
    #: children -- outer-join edge cases (NULL extension) then actually
    #: occur in the data, which correctness testing of outer-join rules
    #: depends on.
    fk_coverage: float = 0.85


class DataGenerator:
    """Seeded, schema-aware row generator."""

    def __init__(
        self,
        catalog: Catalog,
        seed: int = 0,
        profile: Optional[GenerationProfile] = None,
    ) -> None:
        self.catalog = catalog
        self.profile = profile or GenerationProfile()
        self._rng = random.Random(seed)
        self._string_pool = [
            "".join(
                self._rng.choice(string.ascii_lowercase)
                for _ in range(self.profile.string_length)
            )
            for _ in range(self.profile.string_pool_size)
        ]

    # ------------------------------------------------------------------ values

    def _scalar(self, column: ColumnDef) -> object:
        profile = self.profile
        if column.data_type is DataType.INT:
            return self._rng.randint(*profile.int_range)
        if column.data_type is DataType.FLOAT:
            return round(self._rng.uniform(*profile.float_range), 2)
        if column.data_type is DataType.STRING:
            return self._rng.choice(self._string_pool)
        if column.data_type is DataType.DATE:
            return self._rng.randint(*profile.date_range)
        if column.data_type is DataType.BOOL:
            return self._rng.random() < 0.5
        raise SchemaError(f"unsupported data type {column.data_type}")

    def _value(self, column: ColumnDef) -> object:
        if column.nullable and self._rng.random() < self.profile.null_rate:
            return None
        return self._scalar(column)

    # ------------------------------------------------------------------- rows

    def generate_table(
        self,
        table: TableDef,
        row_count: int,
        referenced: Optional[Dict[str, List[Tuple]]] = None,
    ) -> List[Tuple]:
        """Generate ``row_count`` rows for ``table``.

        ``referenced`` maps already-populated table names to their rows, used
        to draw valid foreign-key values.
        """
        referenced = referenced or {}
        key_columns = {name for key in table.all_keys() for name in key}
        fk_sources = self._foreign_key_sources(table, referenced)
        seen_keys: Dict[Tuple[str, ...], set] = {
            key: set() for key in table.all_keys()
        }

        rows: List[Tuple] = []
        attempts_budget = max(100, row_count * 50)
        while len(rows) < row_count and attempts_budget > 0:
            attempts_budget -= 1
            row = self._generate_row(table, key_columns, fk_sources, len(rows))
            if self._violates_key(table, row, seen_keys):
                continue
            self._record_keys(table, row, seen_keys)
            rows.append(row)
        if len(rows) < row_count:
            raise SchemaError(
                f"could not generate {row_count} unique rows for "
                f"{table.name!r}; key domains too small"
            )
        return rows

    def _generate_row(
        self,
        table: TableDef,
        key_columns: set,
        fk_sources: Dict[str, List[object]],
        ordinal: int,
    ) -> Tuple:
        values: List[object] = []
        for column in table.columns:
            if column.name in fk_sources:
                pool = fk_sources[column.name]
                if column.nullable and self._rng.random() < self.profile.null_rate:
                    values.append(None)
                else:
                    values.append(self._rng.choice(pool))
            elif (
                len(table.primary_key) == 1
                and column.name == table.primary_key[0]
                and column.data_type is DataType.INT
            ):
                # Dense surrogate keys keep join fan-outs realistic.
                values.append(ordinal + 1)
            elif column.name in key_columns:
                values.append(self._scalar(column))
            else:
                values.append(self._value(column))
        return tuple(values)

    def _foreign_key_sources(
        self, table: TableDef, referenced: Dict[str, List[Tuple]]
    ) -> Dict[str, List[object]]:
        """Map FK column name -> list of candidate values from the ref table."""
        sources: Dict[str, List[object]] = {}
        for fk in table.foreign_keys:
            if fk.ref_table not in referenced:
                continue
            ref_rows = referenced[fk.ref_table]
            if not ref_rows:
                continue
            ref_names = self.catalog.table(fk.ref_table).column_names
            for local, remote in zip(fk.columns, fk.ref_columns):
                position = ref_names.index(remote)
                pool = [row[position] for row in ref_rows]
                keep = max(1, int(len(pool) * self.profile.fk_coverage))
                if keep < len(pool):
                    pool = self._rng.sample(pool, keep)
                sources[local] = pool
        return sources

    @staticmethod
    def _violates_key(
        table: TableDef, row: Tuple, seen_keys: Dict[Tuple[str, ...], set]
    ) -> bool:
        names = table.column_names
        for key, seen in seen_keys.items():
            value = tuple(row[names.index(name)] for name in key)
            if value in seen:
                return True
        return False

    @staticmethod
    def _record_keys(
        table: TableDef, row: Tuple, seen_keys: Dict[Tuple[str, ...], set]
    ) -> None:
        names = table.column_names
        for key, seen in seen_keys.items():
            seen.add(tuple(row[names.index(name)] for name in key))

    # --------------------------------------------------------------- database

    def populate(
        self, database: Database, row_counts: Dict[str, int]
    ) -> None:
        """Populate ``database`` in FK-dependency order."""
        generated: Dict[str, List[Tuple]] = {}
        for table in _topological_order(self.catalog):
            count = row_counts.get(table.name, 0)
            rows = self.generate_table(table, count, generated)
            generated[table.name] = rows
            database.insert(table.name, rows)


def _topological_order(catalog: Catalog) -> List[TableDef]:
    """Tables sorted so every FK target precedes its referencing table."""
    order: List[TableDef] = []
    placed: set = set()
    remaining = {table.name: table for table in catalog.tables()}
    while remaining:
        progressed = False
        for name in list(remaining):
            table = remaining[name]
            deps = {fk.ref_table for fk in table.foreign_keys} - {name}
            if deps <= placed:
                order.append(table)
                placed.add(name)
                del remaining[name]
                progressed = True
        if not progressed:
            raise SchemaError(
                "cyclic foreign-key dependencies among: "
                + ", ".join(sorted(remaining))
            )
    return order
