"""In-memory row storage for one table.

Rows are plain Python tuples, positionally aligned with the table's column
definitions; ``None`` represents SQL NULL.  The storage layer validates types
on insert so that executor bugs cannot be masked by dirty data.
"""

from __future__ import annotations

import datetime
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.catalog.schema import DataType, TableDef
from repro.catalog.stats import TableStats


class StorageError(Exception):
    """Raised when a row violates the table's schema."""


_PYTHON_TYPES = {
    DataType.INT: (int,),
    DataType.FLOAT: (int, float),
    DataType.STRING: (str,),
    DataType.DATE: (int, datetime.date),
    DataType.BOOL: (bool,),
}


def _check_value(table: str, column_name: str, data_type: DataType, value: object):
    if value is None:
        return
    allowed = _PYTHON_TYPES[data_type]
    # bool is a subclass of int; keep INT columns free of booleans.
    if data_type is DataType.INT and isinstance(value, bool):
        raise StorageError(
            f"{table}.{column_name}: got bool for INT column"
        )
    if not isinstance(value, allowed):
        raise StorageError(
            f"{table}.{column_name}: {value!r} is not a valid "
            f"{data_type.value}"
        )


class StoredTable:
    """A heap of rows conforming to a :class:`TableDef`."""

    def __init__(self, definition: TableDef) -> None:
        self.definition = definition
        self._rows: List[Tuple] = []
        self._stats: TableStats | None = None
        #: Data version: bumped on every insert.  Execution-result caches
        #: and the columnar scan cache key on it to stay consistent.
        self._version = 0
        self._column_cache: List[list] | None = None

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def rows(self) -> List[Tuple]:
        return self._rows

    @property
    def version(self) -> int:
        """Monotonic data version (number of mutations so far)."""
        return self._version

    @property
    def has_column_cache(self) -> bool:
        """Is the columnar snapshot already materialized and current?"""
        return self._column_cache is not None

    def column_data(self) -> List[list]:
        """Struct-of-arrays snapshot: one Python list per column.

        The snapshot is cached until the next :meth:`insert`, so every
        columnar scan of this table -- across plans, batches and whole
        campaigns -- shares one materialization.  Callers must treat the
        returned column lists as immutable.
        """
        if self._column_cache is None:
            if self._rows:
                self._column_cache = [list(col) for col in zip(*self._rows)]
            else:
                self._column_cache = [
                    [] for _ in self.definition.columns
                ]
        return self._column_cache

    def insert(self, row: Sequence[object]) -> None:
        """Insert one row after validating arity, types and NOT NULL."""
        columns = self.definition.columns
        if len(row) != len(columns):
            raise StorageError(
                f"{self.name}: expected {len(columns)} values, got {len(row)}"
            )
        for col, value in zip(columns, row):
            if value is None and not col.nullable:
                raise StorageError(
                    f"{self.name}.{col.name}: NULL in NOT NULL column"
                )
            _check_value(self.name, col.name, col.data_type, value)
        self._rows.append(tuple(row))
        self._stats = None
        self._version += 1
        self._column_cache = None

    def insert_many(self, rows: Iterable[Sequence[object]]) -> None:
        for row in rows:
            self.insert(row)

    def stats(self) -> TableStats:
        """Statistics over the current contents (computed lazily, cached)."""
        if self._stats is None:
            self._stats = TableStats.from_rows(
                self.definition.column_names, self._rows
            )
        return self._stats

    def scan(self) -> Iterator[Tuple]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._rows)
