"""In-memory storage engine: stored tables and the database container."""

from repro.storage.database import Database, empty_database
from repro.storage.table import StorageError, StoredTable

__all__ = ["Database", "StorageError", "StoredTable", "empty_database"]
