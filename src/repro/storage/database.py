"""A database: a catalog plus the stored tables that implement it."""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.catalog.schema import Catalog, SchemaError, TableDef
from repro.catalog.stats import StatsRepository
from repro.storage.table import StoredTable


class Database:
    """Container binding a :class:`Catalog` to in-memory :class:`StoredTable`s.

    This is the "test database" the paper assumes as fixed input (Section
    2.3): the framework is invoked against a given database, and both the
    optimizer (through statistics) and the correctness harness (through
    execution) read from it.
    """

    def __init__(self, catalog: Catalog) -> None:
        catalog.validate()
        self.catalog = catalog
        self._tables: Dict[str, StoredTable] = {
            table.name: StoredTable(table) for table in catalog.tables()
        }

    def table(self, name: str) -> StoredTable:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"no table named {name!r}") from None

    def tables(self) -> List[StoredTable]:
        return list(self._tables.values())

    def insert(self, table_name: str, rows: Iterable) -> None:
        self.table(table_name).insert_many(rows)

    def stats_repository(self) -> StatsRepository:
        """Snapshot statistics for every table (used by the optimizer)."""
        repo = StatsRepository()
        for name, table in self._tables.items():
            repo.set(name, table.stats())
        return repo

    def row_count(self, table_name: str) -> int:
        return len(self.table(table_name))

    def data_fingerprint(self) -> str:
        """Cheap fingerprint of the current table contents.

        Built from per-table data versions (bumped on every insert), not
        from row values, so it costs O(tables).  Execution-result caches
        key on it: two executions of one plan against the same fingerprint
        are guaranteed to see identical rows.  The fingerprint is stable
        within a process, not across processes.
        """
        return ";".join(
            f"{name}:{table.version}"
            for name, table in sorted(self._tables.items())
        )

    def describe(self) -> str:
        """Human-readable summary: table name and row count per table."""
        lines = [
            f"{name}: {len(table)} rows"
            for name, table in sorted(self._tables.items())
        ]
        return "\n".join(lines)


def empty_database(tables: Iterable[TableDef]) -> Database:
    """Convenience constructor: build a database from table definitions."""
    return Database(Catalog(list(tables)))
