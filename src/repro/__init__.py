"""repro: a framework for testing query transformation rules.

A from-scratch reproduction of Elmongui, Narasayya & Ramamurthy, *A
Framework for Testing Query Transformation Rules* (SIGMOD 2009), including
every substrate the paper assumes: a Cascades-style rule-based optimizer
(33 logical exploration rules + implementation rules), an executable
relational engine with full SQL NULL semantics, a TPC-H-shaped test
database, and -- on top -- the paper's contributions: pattern-based query
generation and test-suite compression.

Typical entry points::

    from repro import tpch_database, QueryGenerator, default_registry

    db = tpch_database(seed=0)
    gen = QueryGenerator(db, seed=0)
    outcome = gen.pattern_query_for_rule("JoinCommutativity")
    print(outcome.sql, outcome.trials)
"""

from repro.catalog import Catalog, ColumnDef, DataType, ForeignKey, TableDef
from repro.engine import execute_plan, results_identical
from repro.logical import (
    Distinct,
    Except,
    GbAgg,
    Get,
    Intersect,
    Join,
    JoinKind,
    Limit,
    LogicalOp,
    OpKind,
    Project,
    Select,
    Sort,
    SortKey,
    Union,
    UnionAll,
    make_get,
    validate_tree,
)
from repro.optimizer import (
    OptimizationError,
    OptimizeResult,
    Optimizer,
    OptimizerConfig,
)
from repro.rules import RuleRegistry, default_registry
from repro.sql import sql_to_tree, to_sql
from repro.storage import Database
from repro.testing import (
    CorrectnessRunner,
    CostOracle,
    CoverageCampaign,
    QueryGenerator,
    RandomQueryGenerator,
    TestSuite,
    TestSuiteBuilder,
    baseline_plan,
    matching_plan,
    pair_nodes,
    set_multicover_plan,
    singleton_nodes,
    top_k_independent_plan,
)
from repro.workloads import tpch_catalog, tpch_database

__version__ = "1.0.0"

__all__ = [
    "Catalog",
    "ColumnDef",
    "CorrectnessRunner",
    "CostOracle",
    "CoverageCampaign",
    "DataType",
    "Database",
    "Distinct",
    "Except",
    "ForeignKey",
    "GbAgg",
    "Get",
    "Intersect",
    "Join",
    "JoinKind",
    "Limit",
    "LogicalOp",
    "OpKind",
    "OptimizationError",
    "OptimizeResult",
    "Optimizer",
    "OptimizerConfig",
    "Project",
    "QueryGenerator",
    "RandomQueryGenerator",
    "RuleRegistry",
    "Select",
    "Sort",
    "SortKey",
    "TableDef",
    "TestSuite",
    "TestSuiteBuilder",
    "Union",
    "UnionAll",
    "baseline_plan",
    "default_registry",
    "execute_plan",
    "make_get",
    "matching_plan",
    "pair_nodes",
    "results_identical",
    "set_multicover_plan",
    "singleton_nodes",
    "sql_to_tree",
    "to_sql",
    "top_k_independent_plan",
    "tpch_catalog",
    "tpch_database",
    "validate_tree",
]
