"""Prebuilt test databases.

The paper evaluates against TPC-H and notes its results hold on other
schemas; both a TPC-H-shaped and a star-schema database are provided.
"""

from repro.workloads.star import star_catalog, star_database
from repro.workloads.tpch import BASE_ROW_COUNTS, tpch_catalog, tpch_database

__all__ = [
    "BASE_ROW_COUNTS",
    "star_catalog",
    "star_database",
    "tpch_catalog",
    "tpch_database",
]
