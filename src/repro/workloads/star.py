"""A star-schema test database (retail sales mart).

The paper notes (Section 6.1) that its results hold across "other databases
with different schemas and sizes".  This workload provides that second
schema shape: a central fact table with four dimension tables -- the
classic star -- exercising many-FK fan-in, which matters for rules whose
preconditions depend on declared constraints (eager/lazy aggregation,
semi-join simplification; and the star-join discussion of Section 7).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.catalog.schema import Catalog, ColumnDef, DataType, ForeignKey, TableDef
from repro.datagen.generator import DataGenerator, GenerationProfile
from repro.storage.database import Database


def _col(name: str, data_type: DataType, nullable: bool = True) -> ColumnDef:
    return ColumnDef(name, data_type, nullable)


def star_catalog() -> Catalog:
    """Fact table ``sales`` plus dimensions date/store/product/promotion."""
    date_dim = TableDef(
        name="date_dim",
        columns=[
            _col("d_datekey", DataType.INT, nullable=False),
            _col("d_year", DataType.INT, nullable=False),
            _col("d_month", DataType.INT, nullable=False),
            _col("d_weekday", DataType.STRING),
        ],
        primary_key=("d_datekey",),
    )
    store = TableDef(
        name="store",
        columns=[
            _col("st_storekey", DataType.INT, nullable=False),
            _col("st_name", DataType.STRING, nullable=False),
            _col("st_city", DataType.STRING),
            _col("st_size", DataType.INT),
        ],
        primary_key=("st_storekey",),
    )
    product = TableDef(
        name="product",
        columns=[
            _col("p_productkey", DataType.INT, nullable=False),
            _col("p_name", DataType.STRING, nullable=False),
            _col("p_category", DataType.STRING),
            _col("p_price", DataType.FLOAT),
        ],
        primary_key=("p_productkey",),
    )
    promotion = TableDef(
        name="promotion",
        columns=[
            _col("pr_promokey", DataType.INT, nullable=False),
            _col("pr_name", DataType.STRING),
            _col("pr_discount", DataType.FLOAT),
        ],
        primary_key=("pr_promokey",),
    )
    sales = TableDef(
        name="sales",
        columns=[
            _col("s_saleskey", DataType.INT, nullable=False),
            _col("s_datekey", DataType.INT, nullable=False),
            _col("s_storekey", DataType.INT, nullable=False),
            _col("s_productkey", DataType.INT, nullable=False),
            _col("s_promokey", DataType.INT),  # nullable: not all sales promoted
            _col("s_quantity", DataType.INT),
            _col("s_amount", DataType.FLOAT),
        ],
        primary_key=("s_saleskey",),
        foreign_keys=[
            ForeignKey(("s_datekey",), "date_dim", ("d_datekey",)),
            ForeignKey(("s_storekey",), "store", ("st_storekey",)),
            ForeignKey(("s_productkey",), "product", ("p_productkey",)),
            ForeignKey(("s_promokey",), "promotion", ("pr_promokey",)),
        ],
    )
    return Catalog([date_dim, store, product, promotion, sales])


#: Row counts at scale 1.
BASE_ROW_COUNTS: Dict[str, int] = {
    "date_dim": 60,
    "store": 12,
    "product": 40,
    "promotion": 8,
    "sales": 500,
}


def star_database(
    seed: int = 0,
    scale: float = 1.0,
    profile: Optional[GenerationProfile] = None,
) -> Database:
    """Build and populate the star-schema database deterministically."""
    catalog = star_catalog()
    database = Database(catalog)
    generator = DataGenerator(catalog, seed=seed, profile=profile)
    counts = {
        name: max(1, int(count * scale))
        for name, count in BASE_ROW_COUNTS.items()
    }
    generator.populate(database, counts)
    return database
