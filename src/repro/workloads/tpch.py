"""A TPC-H-shaped test database.

The paper runs its experiments against the TPC-H database (Section 6.1).  We
reproduce the same eight-table schema -- REGION, NATION, SUPPLIER, CUSTOMER,
PART, PARTSUPP, ORDERS, LINEITEM -- with the standard primary keys and
foreign keys, and populate it with deterministic synthetic data.  Since the
paper focuses on *logical* transformation rules, which it notes fire "by and
large regardless of the data size or distribution", a scaled-down instance
(hundreds to thousands of rows) preserves all the behaviour the framework
exercises while keeping correctness runs fast.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.catalog.schema import Catalog, ColumnDef, DataType, ForeignKey, TableDef
from repro.datagen.generator import DataGenerator, GenerationProfile
from repro.storage.database import Database


def _col(name: str, data_type: DataType, nullable: bool = True) -> ColumnDef:
    return ColumnDef(name, data_type, nullable)


def tpch_catalog() -> Catalog:
    """The TPC-H schema (scaled; types simplified to the engine's types)."""
    region = TableDef(
        name="region",
        columns=[
            _col("r_regionkey", DataType.INT, nullable=False),
            _col("r_name", DataType.STRING, nullable=False),
            _col("r_comment", DataType.STRING),
        ],
        primary_key=("r_regionkey",),
    )
    nation = TableDef(
        name="nation",
        columns=[
            _col("n_nationkey", DataType.INT, nullable=False),
            _col("n_name", DataType.STRING, nullable=False),
            _col("n_regionkey", DataType.INT, nullable=False),
            _col("n_comment", DataType.STRING),
        ],
        primary_key=("n_nationkey",),
        foreign_keys=[ForeignKey(("n_regionkey",), "region", ("r_regionkey",))],
    )
    supplier = TableDef(
        name="supplier",
        columns=[
            _col("s_suppkey", DataType.INT, nullable=False),
            _col("s_name", DataType.STRING, nullable=False),
            _col("s_address", DataType.STRING),
            _col("s_nationkey", DataType.INT, nullable=False),
            _col("s_phone", DataType.STRING),
            _col("s_acctbal", DataType.FLOAT),
        ],
        primary_key=("s_suppkey",),
        foreign_keys=[ForeignKey(("s_nationkey",), "nation", ("n_nationkey",))],
    )
    customer = TableDef(
        name="customer",
        columns=[
            _col("c_custkey", DataType.INT, nullable=False),
            _col("c_name", DataType.STRING, nullable=False),
            _col("c_address", DataType.STRING),
            _col("c_nationkey", DataType.INT, nullable=False),
            _col("c_phone", DataType.STRING),
            _col("c_acctbal", DataType.FLOAT),
            _col("c_mktsegment", DataType.STRING),
        ],
        primary_key=("c_custkey",),
        foreign_keys=[ForeignKey(("c_nationkey",), "nation", ("n_nationkey",))],
    )
    part = TableDef(
        name="part",
        columns=[
            _col("p_partkey", DataType.INT, nullable=False),
            _col("p_name", DataType.STRING, nullable=False),
            _col("p_mfgr", DataType.STRING),
            _col("p_brand", DataType.STRING),
            _col("p_type", DataType.STRING),
            _col("p_size", DataType.INT),
            _col("p_retailprice", DataType.FLOAT),
        ],
        primary_key=("p_partkey",),
    )
    partsupp = TableDef(
        name="partsupp",
        columns=[
            _col("ps_partkey", DataType.INT, nullable=False),
            _col("ps_suppkey", DataType.INT, nullable=False),
            _col("ps_availqty", DataType.INT),
            _col("ps_supplycost", DataType.FLOAT),
        ],
        primary_key=("ps_partkey", "ps_suppkey"),
        foreign_keys=[
            ForeignKey(("ps_partkey",), "part", ("p_partkey",)),
            ForeignKey(("ps_suppkey",), "supplier", ("s_suppkey",)),
        ],
    )
    orders = TableDef(
        name="orders",
        columns=[
            _col("o_orderkey", DataType.INT, nullable=False),
            _col("o_custkey", DataType.INT, nullable=False),
            _col("o_orderstatus", DataType.STRING),
            _col("o_totalprice", DataType.FLOAT),
            _col("o_orderdate", DataType.DATE),
            _col("o_orderpriority", DataType.INT),
        ],
        primary_key=("o_orderkey",),
        foreign_keys=[ForeignKey(("o_custkey",), "customer", ("c_custkey",))],
    )
    lineitem = TableDef(
        name="lineitem",
        columns=[
            _col("l_orderkey", DataType.INT, nullable=False),
            _col("l_linenumber", DataType.INT, nullable=False),
            _col("l_partkey", DataType.INT, nullable=False),
            _col("l_suppkey", DataType.INT, nullable=False),
            _col("l_quantity", DataType.INT),
            _col("l_extendedprice", DataType.FLOAT),
            _col("l_discount", DataType.FLOAT),
            _col("l_shipdate", DataType.DATE),
            _col("l_returnflag", DataType.STRING),
        ],
        primary_key=("l_orderkey", "l_linenumber"),
        foreign_keys=[
            ForeignKey(("l_orderkey",), "orders", ("o_orderkey",)),
            ForeignKey(("l_partkey",), "part", ("p_partkey",)),
            ForeignKey(("l_suppkey",), "supplier", ("s_suppkey",)),
        ],
    )
    return Catalog(
        [region, nation, supplier, customer, part, partsupp, orders, lineitem]
    )


#: Row counts at "scale 1" of this miniature instance.  The correctness
#: harness executes hundreds of plans per run, so the default is small;
#: pass a larger ``scale`` for heavier executions.
BASE_ROW_COUNTS: Dict[str, int] = {
    "region": 5,
    "nation": 25,
    "supplier": 30,
    "customer": 60,
    "part": 80,
    "partsupp": 160,
    "orders": 200,
    "lineitem": 600,
}


def tpch_database(
    seed: int = 0,
    scale: float = 1.0,
    profile: Optional[GenerationProfile] = None,
) -> Database:
    """Build and populate the miniature TPC-H database deterministically."""
    catalog = tpch_catalog()
    database = Database(catalog)
    generator = DataGenerator(catalog, seed=seed, profile=profile)
    counts = {
        name: max(1, int(count * scale))
        for name, count in BASE_ROW_COUNTS.items()
    }
    generator.populate(database, counts)
    return database
