"""Observability: structured tracing and metrics for the optimizer stack.

The framework's method rests on knowing *which rules fired where* --
``RuleSet(q)`` drives generation and the rule-query bipartite graph drives
compression -- and this package records exactly that while a campaign
runs:

* :class:`Tracer` / :class:`RecordingTracer` (:mod:`repro.obs.trace`):
  structured span/event records with monotonic timings, a bounded ring
  buffer, deterministic JSON export and Chrome trace-event export.  The
  default :data:`NULL_TRACER` makes every hook a no-op.
* :class:`MetricsRegistry` (:mod:`repro.obs.metrics`): declared
  counters/gauges/histograms -- per-rule firing and rejection counts,
  memo sizes, service cache traffic -- mergeable across
  ``optimize_many()`` worker processes.

See ``docs/OBSERVABILITY.md`` for usage and the generated metric
reference in ``docs/METRICS.md``.
"""

from repro.obs.metrics import (
    METRIC_DOCS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    documented_metrics,
    parse_name,
    render_name,
)
from repro.obs.trace import (
    DEFAULT_CAPACITY,
    NULL_TRACER,
    RecordingTracer,
    TraceEvent,
    Tracer,
    merge_chrome_traces,
)

__all__ = [
    "Counter",
    "DEFAULT_CAPACITY",
    "Gauge",
    "Histogram",
    "METRIC_DOCS",
    "MetricsRegistry",
    "NULL_TRACER",
    "RecordingTracer",
    "TraceEvent",
    "Tracer",
    "documented_metrics",
    "merge_chrome_traces",
    "parse_name",
    "render_name",
]
