"""Structured optimizer tracing.

A :class:`Tracer` receives *events* (instantaneous records) and *spans*
(records with a duration) from the optimizer engine, the memo, and the
plan service.  Two implementations exist:

* :data:`NULL_TRACER` -- the default.  Every hook is a no-op and
  ``enabled`` is False, so instrumented hot paths pay exactly one
  attribute check (``if tracer.enabled:``) when tracing is off.
* :class:`RecordingTracer` -- keeps events in a bounded ring buffer
  (oldest events are dropped first, with a drop counter) and stamps each
  event with a monotonic-clock timestamp relative to the tracer's start.

Determinism contract: the *sequence* of events (names, categories,
arguments, order) for one optimization depends only on the query, the
registry, and the config -- never on wall-clock time.  Timestamps and
durations live in separate fields so exports can include them (Chrome
trace viewing) or exclude them (byte-identical JSON for snapshot tests
and caching); :meth:`RecordingTracer.to_json` excludes them by design.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

#: Event argument values: kept to JSON scalars so exports never need custom
#: encoders.
ArgValue = object

#: Default ring-buffer capacity (events).  A single mid-sized optimization
#: emits a few thousand rule events; 64k holds several queries of detail.
DEFAULT_CAPACITY = 65536


@dataclass(frozen=True)
class TraceEvent:
    """One recorded trace event.

    ``ts_us``/``dur_us`` are microseconds on the monotonic clock relative
    to the owning tracer's start; ``dur_us`` is 0 for instantaneous
    events.  ``args`` is a sorted tuple of ``(key, value)`` pairs so
    events are hashable and export deterministically.
    """

    seq: int
    name: str
    cat: str
    args: Tuple[Tuple[str, ArgValue], ...]
    ts_us: int = 0
    dur_us: int = 0

    def arg(self, key: str, default: ArgValue = None) -> ArgValue:
        for name, value in self.args:
            if name == key:
                return value
        return default

    def deterministic_dict(self) -> Dict[str, ArgValue]:
        """The timing-free view used by deterministic JSON export."""
        return {
            "seq": self.seq,
            "name": self.name,
            "cat": self.cat,
            "args": {key: value for key, value in self.args},
        }


class _NullSpan:
    """Reusable no-op context manager handed out by the null tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def annotate(self, **args: "ArgValue") -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """The no-op base tracer: every hook returns immediately.

    Instrumentation sites guard bulk work behind ``tracer.enabled`` and
    call :meth:`event` / :meth:`span` unconditionally only where the call
    itself is the bulk work; either way the disabled cost is one branch
    or one cheap method call, with no allocation.

    High-volume per-attempt events (every rule considered/rejected, every
    memo insert, every costing) are guarded behind ``tracer.detailed``
    instead: a ``summary``-detail recording tracer skips them, keeping
    recording overhead low on full campaign runs while per-rule *counts*
    stay exact through the metrics tally the engine maintains anyway.
    """

    enabled: bool = False
    detailed: bool = False

    def event(self, name: str, cat: str = "optimizer", **args: ArgValue) -> None:
        pass

    def span(self, name: str, cat: str = "optimizer", **args: ArgValue):
        return _NULL_SPAN


#: The shared default tracer.  Identity-checked in tests to guarantee the
#: disabled path allocates nothing.
NULL_TRACER = Tracer()


class _RecordingSpan:
    """Context manager that records one complete ('X') event on exit."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_start_ns")

    def __init__(self, tracer: "RecordingTracer", name: str, cat: str, args):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_RecordingSpan":
        self._start_ns = time.perf_counter_ns()
        return self

    def annotate(self, **args: ArgValue) -> None:
        """Attach args discovered mid-span (e.g. output row counts)."""
        self._args.update(args)

    def __exit__(self, *exc_info) -> None:
        end_ns = time.perf_counter_ns()
        self._tracer._record(
            self._name,
            self._cat,
            self._args,
            ts_ns=self._start_ns,
            dur_ns=end_ns - self._start_ns,
        )


class RecordingTracer(Tracer):
    """A tracer that keeps events in a bounded ring buffer.

    ``detail``: ``"full"`` records per-attempt events too; ``"summary"``
    records only the low-volume ones (spans, rule firings, service/cache
    traffic) -- the right choice when tracing whole benchmark campaigns.
    """

    enabled = True

    def __init__(
        self, capacity: int = DEFAULT_CAPACITY, detail: str = "full"
    ) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        if detail not in ("full", "summary"):
            raise ValueError("detail must be 'full' or 'summary'")
        self.capacity = capacity
        self.detail = detail
        self.detailed = detail == "full"
        self._events: deque = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0
        self._t0_ns = time.perf_counter_ns()

    # -------------------------------------------------------------- record

    def _record(
        self,
        name: str,
        cat: str,
        args: Dict[str, ArgValue],
        ts_ns: Optional[int] = None,
        dur_ns: int = 0,
    ) -> None:
        if ts_ns is None:
            ts_ns = time.perf_counter_ns()
        if len(self._events) == self.capacity:
            self._dropped += 1
        self._events.append(
            TraceEvent(
                seq=self._seq,
                name=name,
                cat=cat,
                args=tuple(sorted(args.items())),
                ts_us=(ts_ns - self._t0_ns) // 1000,
                dur_us=dur_ns // 1000,
            )
        )
        self._seq += 1

    def event(self, name: str, cat: str = "optimizer", **args: ArgValue) -> None:
        self._record(name, cat, args)

    def span(self, name: str, cat: str = "optimizer", **args: ArgValue):
        return _RecordingSpan(self, name, cat, args)

    # ------------------------------------------------------------- inspect

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted from the ring buffer (total recorded - kept)."""
        return self._dropped

    def clear(self) -> None:
        self._events.clear()
        self._seq = 0
        self._dropped = 0
        self._t0_ns = time.perf_counter_ns()

    def signature(self) -> List[Tuple[str, str, Tuple]]:
        """The timing-free event sequence, for determinism assertions."""
        return [(e.name, e.cat, e.args) for e in self._events]

    # -------------------------------------------------------------- export

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Deterministic JSON export: timestamps and durations excluded.

        Two runs of the same seeded workload produce byte-identical
        output (the acceptance property behind ``repro trace --format
        json``); sorted keys make the bytes independent of dict order.
        """
        payload = {
            "capacity": self.capacity,
            "dropped": self._dropped,
            "events": [e.deterministic_dict() for e in self._events],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    def to_chrome_json(self, indent: Optional[int] = 2) -> str:
        """Chrome trace-event JSON (load via ``chrome://tracing`` or
        https://ui.perfetto.dev) -- includes real timings, so this export
        is *not* byte-deterministic."""
        trace_events = []
        for e in self._events:
            record = {
                "name": e.name,
                "cat": e.cat,
                "ph": "X" if e.dur_us else "i",
                "ts": e.ts_us,
                "pid": 0,
                "tid": 0,
                "args": {key: value for key, value in e.args},
            }
            if e.dur_us:
                record["dur"] = e.dur_us
            else:
                record["s"] = "t"  # instant-event scope: thread
            trace_events.append(record)
        return json.dumps(
            {"traceEvents": trace_events, "displayTimeUnit": "ms"},
            indent=indent,
            sort_keys=True,
        )

    def counts_by_name(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for e in self._events:
            counts[e.name] = counts.get(e.name, 0) + 1
        return counts


def merge_chrome_traces(payloads: Iterable[str]) -> str:
    """Concatenate several chrome-trace JSON strings into one document,
    remapping ``pid`` so each input renders as its own process row."""
    merged: List[dict] = []
    for pid, payload in enumerate(payloads):
        for record in json.loads(payload).get("traceEvents", []):
            record = dict(record)
            record["pid"] = pid
            merged.append(record)
    return json.dumps(
        {"traceEvents": merged, "displayTimeUnit": "ms"},
        indent=2,
        sort_keys=True,
    )
