"""The metrics registry: named counters, gauges, and histograms.

Every metric the framework emits is declared up front in
:data:`METRIC_DOCS` with its kind and a one-line description; a
:class:`MetricsRegistry` refuses undeclared names by default, which is
what lets ``tools/generate_metrics_docs.py`` render a reference table
(``docs/METRICS.md``) that can never drift from the code.

Per-rule metrics carry a ``rule`` label (one time series per rule name);
:meth:`MetricsRegistry.merge` folds a :meth:`snapshot` from another
process into this registry, which is how ``optimize_many()`` worker
metrics reach the parent's campaign report: counters and histograms add,
gauges keep the maximum observed value.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: label set: sorted ((key, value), ...) pairs.
Labels = Tuple[Tuple[str, str], ...]

#: Declared metrics: name -> (kind, label keys, description).  The docs
#: generator and the registry's strict mode both read this table.
METRIC_DOCS: Dict[str, Tuple[str, Tuple[str, ...], str]] = {
    # ------------------------------------------------------------ optimizer
    "optimizer.optimizations": (
        "counter", (),
        "Completed `Optimizer.optimize()` runs (failed runs excluded).",
    ),
    "optimizer.optimization_errors": (
        "counter", (),
        "`Optimizer.optimize()` runs that raised `OptimizationError`.",
    ),
    "optimizer.rule.considered": (
        "counter", ("rule",),
        "Times the rule was attempted on a memo expression "
        "(exploration and implementation phases).",
    ),
    "optimizer.rule.fired": (
        "counter", ("rule",),
        "Attempts in which the rule's substitution produced at least one "
        "alternative -- the paper's *rule exercised* predicate.",
    ),
    "optimizer.rule.rejected": (
        "counter", ("rule",),
        "Attempts that produced nothing: the pattern found no binding or "
        "every binding failed the precondition.",
    ),
    "optimizer.rule.precondition_failures": (
        "counter", ("rule",),
        "Individual pattern bindings discarded by the rule's "
        "precondition (one attempt can contribute several).",
    ),
    "optimizer.rule_applications": (
        "counter", (),
        "Successful exploration-rule applications across all "
        "optimizations (the budget `max_rule_applications` counts these "
        "per run).",
    ),
    "optimizer.costings": (
        "counter", (),
        "Physical alternatives costed during implementation "
        "(`local_cost` invocations).",
    ),
    "optimizer.enforcers": (
        "counter", (),
        "Sort enforcers considered to satisfy a required ordering.",
    ),
    "optimizer.budget_exhausted": (
        "counter", (),
        "Optimizations that hit a memo/application budget cap and "
        "stopped exploration early.",
    ),
    "optimizer.memo.groups": (
        "histogram", (),
        "Final memo group count, one observation per optimization.",
    ),
    "optimizer.memo.exprs": (
        "histogram", (),
        "Final memo expression count, one observation per optimization.",
    ),
    # -------------------------------------------------------------- service
    "service.requests": (
        "counter", (),
        "Plan/Cost requests received by the `PlanService` (batch members "
        "included).",
    ),
    "service.memory_hits": (
        "counter", (),
        "Requests answered from the in-process fingerprint cache.",
    ),
    "service.disk_hits": (
        "counter", (),
        "Cost requests answered from the persistent disk cache.",
    ),
    "service.computed": (
        "counter", (),
        "Requests that ran the optimizer (cache misses).",
    ),
    "service.errors": (
        "counter", (),
        "Computations that ended in `OptimizationError` (memoized too).",
    ),
    "service.batches": (
        "counter", (),
        "`optimize_many()` batches that had at least one cache miss.",
    ),
    "service.parallel_tasks": (
        "counter", (),
        "Computations executed on the worker process pool.",
    ),
    "service.worker_merges": (
        "counter", (),
        "Worker metric snapshots merged back into this registry.",
    ),
    # ------------------------------------------------------------- mutation
    "mutation.mutants": (
        "counter", ("operator",),
        "Mutants evaluated by the mutation campaign, per mutation "
        "operator.",
    ),
    "mutation.outcomes": (
        "counter", ("variant", "status"),
        "Kill-matrix cells: one increment per (suite variant, outcome "
        "status) pair of every evaluated mutant.",
    ),
    "mutation.pool_queries": (
        "counter", (),
        "Pattern-based queries generated into mutant evaluation pools "
        "(regenerated against each mutated registry).",
    ),
    # ------------------------------------------------------------- compress
    "compress.selections": (
        "counter", ("objective",),
        "Detection-aware suite selections computed over a kill matrix, "
        "per objective.",
    ),
    "compress.selected_queries": (
        "counter", ("objective",),
        "Query slots chosen into detection-aware selections, per "
        "objective.",
    ),
    "compress.covered_mutants": (
        "counter", ("objective",),
        "Expected-detectable mutants detected by a scored selection, "
        "per objective.",
    ),
    "compress.adaptive_raises": (
        "counter", (),
        "Per-rule budget raises performed by the adaptive-k stage of "
        "the detection objective.",
    ),
    "compress.pareto_points": (
        "counter", (),
        "Points emitted into cost-vs-detection Pareto reports.",
    ),
    # --------------------------------------------------------- differential
    "diff.queries": (
        "counter", (),
        "Suite queries fanned out across the differential backend fleet.",
    ),
    "diff.executions": (
        "counter", ("backend",),
        "Query executions attempted per fleet backend (errors included).",
    ),
    "diff.outcomes": (
        "counter", ("backend", "outcome"),
        "Unified per-(query, backend) verdicts against the reference "
        "backend: agree, disagree, error, or skip.",
    ),
    "diff.plan_comparisons": (
        "counter", (),
        "Plan-shape comparisons between backends sharing a plan "
        "language.",
    ),
    "diff.plan_divergences": (
        "counter", (),
        "Plan-shape comparisons whose normalized shapes differed "
        "(informational; never a verdict by itself).",
    ),
    # ------------------------------------------------------------ execution
    "exec.executions": (
        "counter", ("executor",),
        "Completed plan executions, labelled by executor "
        "(columnar or iterator).",
    ),
    "exec.rows": (
        "counter", (),
        "Result rows produced by completed plan executions.",
    ),
    "exec.batches": (
        "counter", (),
        "Coalesced execution groups processed by `execute_many()` "
        "(one unique (plan, projection) pair per group).",
    ),
    "exec.coalesced": (
        "counter", (),
        "Requests inside `execute_many()` batches that reused another "
        "request's execution instead of running the plan again.",
    ),
    "exec.cache_hits": (
        "counter", (),
        "`PlanService.execute_many()` requests answered from the "
        "cross-batch result cache (keyed by plan signature, projection, "
        "and database fingerprint).",
    ),
    "exec.scan_cache_hits": (
        "counter", (),
        "Columnar table scans served from the per-table column "
        "snapshot cache (shared scans).",
    ),
    "exec.self_checks": (
        "counter", (),
        "Executions differentially verified by running both the "
        "columnar and iterator executors.",
    ),
    "exec.self_check_mismatches": (
        "counter", (),
        "Self-checked executions whose executors disagreed on the "
        "canonical result bag (each one raises `ExecutionError`).",
    ),
    # ---------------------------------------------------------------- trace
    "trace.dropped_events": (
        "gauge", (),
        "Events evicted from the recording tracer's ring buffer.",
    ),
}


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value; cross-process merge keeps the maximum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value


class Histogram:
    """Count/sum/min/max summary of observed values."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }


def render_name(name: str, labels: Labels) -> str:
    """``name{k=v,...}`` -- the stable text key used in snapshots."""
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{inner}}}"


def parse_name(rendered: str) -> Tuple[str, Labels]:
    """Inverse of :func:`render_name` (used by :meth:`MetricsRegistry.merge`)."""
    if not rendered.endswith("}"):
        return rendered, ()
    name, _, inner = rendered[:-1].partition("{")
    labels = []
    for part in inner.split(","):
        key, _, value = part.partition("=")
        labels.append((key, value))
    return name, tuple(labels)


class MetricsRegistry:
    """All metrics of one process (or one worker task).

    ``strict`` (the default) rejects metric names absent from
    :data:`METRIC_DOCS` and label keys that do not match the declaration,
    so every emitted series is guaranteed to be documented.
    """

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self._counters: Dict[Tuple[str, Labels], Counter] = {}
        self._gauges: Dict[Tuple[str, Labels], Gauge] = {}
        self._histograms: Dict[Tuple[str, Labels], Histogram] = {}
        #: ``(kind, name, label keys)`` triples that already passed strict
        #: validation -- metric resolution is on the optimizer's
        #: per-optimization path, so repeats must not re-validate.
        self._validated: set = set()
        #: Pre-resolved handles for the optimizer's bookkeeping path (one
        #: registry serves many Optimizer instances -- one per distinct
        #: config -- so the cache must live here, not on the engine).
        self._rule_counter_cache: Dict[str, Tuple[Counter, ...]] = {}
        self._optimizer_handles: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------ creation

    def _key(self, kind: str, name: str, labels: Mapping[str, str]) -> Tuple[str, Labels]:
        if self.strict:
            shape = (kind, name, tuple(labels))
            if shape not in self._validated:
                self._validate(kind, name, labels)
                self._validated.add(shape)
        if not labels:
            return name, ()
        if len(labels) == 1:
            ((key, value),) = labels.items()
            return name, ((key, str(value)),)
        return name, tuple(sorted((k, str(v)) for k, v in labels.items()))

    def _validate(self, kind: str, name: str, labels: Mapping[str, str]) -> None:
        doc = METRIC_DOCS.get(name)
        if doc is None:
            raise KeyError(
                f"undeclared metric {name!r}: add it to "
                "repro.obs.metrics.METRIC_DOCS (and regenerate "
                "docs/METRICS.md)"
            )
        declared_kind, declared_labels, _ = doc
        if declared_kind != kind:
            raise TypeError(
                f"metric {name!r} is declared as a {declared_kind}, "
                f"not a {kind}"
            )
        if tuple(sorted(labels)) != tuple(sorted(declared_labels)):
            raise KeyError(
                f"metric {name!r} expects labels {declared_labels}, "
                f"got {tuple(sorted(labels))}"
            )

    def counter(self, name: str, **labels: str) -> Counter:
        key = self._key("counter", name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = self._key("gauge", name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name: str, **labels: str) -> Histogram:
        key = self._key("histogram", name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram()
        return metric

    # ------------------------------------------------------- cached handles

    def rule_counters(self, rule: str) -> Tuple[Counter, ...]:
        """``(considered, fired, rejected, precondition_failures)`` counter
        handles for one rule, resolved and validated exactly once."""
        cached = self._rule_counter_cache.get(rule)
        if cached is None:
            cached = self._rule_counter_cache[rule] = (
                self.counter("optimizer.rule.considered", rule=rule),
                self.counter("optimizer.rule.fired", rule=rule),
                self.counter("optimizer.rule.rejected", rule=rule),
                self.counter(
                    "optimizer.rule.precondition_failures", rule=rule
                ),
            )
        return cached

    def optimizer_handles(self) -> Dict[str, object]:
        """The label-free optimizer metric handles, resolved once."""
        handles = self._optimizer_handles
        if handles is None:
            handles = self._optimizer_handles = {
                "optimizations": self.counter("optimizer.optimizations"),
                "applications": self.counter("optimizer.rule_applications"),
                "costings": self.counter("optimizer.costings"),
                "enforcers": self.counter("optimizer.enforcers"),
                "budget": self.counter("optimizer.budget_exhausted"),
                "groups": self.histogram("optimizer.memo.groups"),
                "exprs": self.histogram("optimizer.memo.exprs"),
            }
        return handles

    # ----------------------------------------------------------- snapshots

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A picklable, JSON-friendly dump with deterministic key order."""
        return {
            "counters": {
                render_name(name, labels): metric.value
                for (name, labels), metric in sorted(self._counters.items())
            },
            "gauges": {
                render_name(name, labels): metric.value
                for (name, labels), metric in sorted(self._gauges.items())
            },
            "histograms": {
                render_name(name, labels): metric.as_dict()
                for (name, labels), metric in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: Mapping[str, Mapping[str, object]]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram components add; gauges keep the maximum.
        Used to aggregate per-task worker metrics from ``optimize_many``.
        """
        for rendered, value in snapshot.get("counters", {}).items():
            name, labels = parse_name(rendered)
            self.counter(name, **dict(labels)).value += int(value)
        for rendered, value in snapshot.get("gauges", {}).items():
            name, labels = parse_name(rendered)
            gauge = self.gauge(name, **dict(labels))
            gauge.value = max(gauge.value, value)
        for rendered, parts in snapshot.get("histograms", {}).items():
            name, labels = parse_name(rendered)
            histogram = self.histogram(name, **dict(labels))
            histogram.count += int(parts["count"])
            histogram.total += float(parts["total"])
            for bound, pick in (("min", min), ("max", max)):
                incoming = parts.get(bound)
                if incoming is None:
                    continue
                current = getattr(histogram, bound)
                setattr(
                    histogram,
                    bound,
                    incoming if current is None else pick(current, incoming),
                )

    # ------------------------------------------------------------- queries

    def counter_value(self, name: str, **labels: str) -> int:
        key = self._key("counter", name, labels)
        metric = self._counters.get(key)
        return metric.value if metric is not None else 0

    def rule_table(self) -> List[Tuple[str, int, int, int]]:
        """``(rule, considered, fired, rejected)`` rows, sorted by fired
        count descending then name -- the `repro trace` hot-rule table."""
        rules = set()
        for metric_name in (
            "optimizer.rule.considered",
            "optimizer.rule.fired",
            "optimizer.rule.rejected",
        ):
            for (name, labels) in self._counters:
                if name == metric_name:
                    rules.add(dict(labels)["rule"])
        rows = [
            (
                rule,
                self.counter_value("optimizer.rule.considered", rule=rule),
                self.counter_value("optimizer.rule.fired", rule=rule),
                self.counter_value("optimizer.rule.rejected", rule=rule),
            )
            for rule in rules
        ]
        rows.sort(key=lambda row: (-row[2], row[0]))
        return rows


def documented_metrics() -> Iterable[Tuple[str, str, Tuple[str, ...], str]]:
    """``(name, kind, label keys, description)`` rows in name order, for
    the docs generator."""
    for name in sorted(METRIC_DOCS):
        kind, labels, description = METRIC_DOCS[name]
        yield name, kind, labels, description
