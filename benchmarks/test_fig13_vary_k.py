"""Figure 13: Impact of the test-suite size k on solution quality.

Paper result (n=15 fixed, pairs; k swept): TOPK is the best algorithm at
every k.  SMC produces good solutions at very small k (k=1) but degrades
at larger k -- with more queries picked per rule it becomes ever more
likely that some picked query is catastrophically expensive once the rule
pair is disabled (SMC never looks at edge costs).  Expected shape here:
TOPK <= SMC everywhere, with SMC's relative gap growing with k.
"""

import pytest

from figures_common import compression_costs, emit_figure, pair_suite

N = 6  # 15 pairs (the paper fixes 15 rules -> 105 pairs)
K_VALUES = (1, 2, 3, 4, 6)


def test_fig13_vary_suite_size(benchmark, capsys):
    series = {}

    def run_all():
        for k in K_VALUES:
            suite = pair_suite(N, k)
            series[k] = compression_costs(suite)
        return series

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        (
            k,
            round(series[k]["BASELINE"], 1),
            round(series[k]["SMC"], 1),
            round(series[k]["TOPK"], 1),
        )
        for k in K_VALUES
    ]
    emit_figure(
        capsys,
        "fig13",
        f"impact of test-suite size k (n={N} rules, {N*(N-1)//2} pairs)",
        ("k", "BASELINE", "SMC", "TOPK"),
        rows,
    )

    for k in K_VALUES:
        assert series[k]["TOPK"] <= series[k]["SMC"] * 1.05, (
            f"TOPK must be best across all k (k={k})"
        )
    # SMC's disadvantage versus TOPK should not shrink as k grows.
    first_gap = series[K_VALUES[0]]["SMC"] / series[K_VALUES[0]]["TOPK"]
    last_gap = series[K_VALUES[-1]]["SMC"] / series[K_VALUES[-1]]["TOPK"]
    assert last_gap >= 0.8 * first_gap
