"""Figure 14: Exploiting monotonicity to reduce optimizer invocations.

Paper result: when building the rule-pair bipartite graph for TOPK, using
``Cost(q) <= Cost(q, ¬R)`` to prune edge-cost computations saves a factor
of 6x-9x of the optimizer calls *without affecting the quality of the
result* (it is a sound optimization).  Expected shape here: a consistent
multiplicative saving at every sweep point and bit-identical solution
costs.
"""

import pytest

from figures_common import emit_figure, monotonicity_comparison, pair_suite

SIZES = (4, 6, 8, 10)
K = 2


def test_fig14_monotonicity_savings(benchmark, capsys):
    series = {}

    def run_all():
        for n in SIZES:
            suite = pair_suite(n, K)
            series[n] = monotonicity_comparison(suite)
        return series

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for n in SIZES:
        data = series[n]
        factor = data["invocations_plain"] / max(1, data["invocations_mono"])
        rows.append(
            (
                f"n={n} ({n * (n - 1) // 2} pairs)",
                data["invocations_plain"],
                data["invocations_mono"],
                round(factor, 2),
                round(data["cost_plain"], 1),
                round(data["cost_mono"], 1),
            )
        )
    emit_figure(
        capsys,
        "fig14",
        f"optimizer invocations with/without monotonicity (k={K})",
        ("rules", "calls plain", "calls mono", "factor", "cost plain", "cost mono"),
        rows,
    )

    for n in SIZES:
        data = series[n]
        assert data["invocations_mono"] < data["invocations_plain"], (
            f"monotonicity must save optimizer calls (n={n})"
        )
        assert abs(data["cost_plain"] - data["cost_mono"]) < 1e-6, (
            "monotonicity must be sound (identical solution quality)"
        )
