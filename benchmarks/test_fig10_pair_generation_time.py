"""Figure 10: Random vs. Pattern-based generation for rule pairs (time).

Paper result: the trial-count advantage of PATTERN (Figure 9) translates
directly into generation *time* (log scale).  Expected shape here: PATTERN
wall-clock totals well below RANDOM at both n values.

The campaign results are shared with Figure 9 via an in-process cache, so
this module reports the timing series of the same runs.
"""

import pytest

from figures_common import emit_figure, pair_generation_campaign

SIZES = (15, 30)


def test_fig10_time_for_rule_pairs(benchmark, capsys):
    seconds = {}

    def run_all():
        for n in SIZES:
            for method in ("pattern", "random"):
                rows = pair_generation_campaign(method, n)
                seconds[(method, n)] = sum(row[4] for row in rows)
        return seconds

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        (
            f"n={n} ({n * (n - 1) // 2} pairs)",
            round(seconds[("pattern", n)], 2),
            round(seconds[("random", n)], 2),
            round(
                seconds[("random", n)] / max(1e-9, seconds[("pattern", n)]), 1
            ),
        )
        for n in SIZES
    ]
    emit_figure(
        capsys,
        "fig10",
        "generation time for rule pairs (seconds)",
        ("rules", "PATTERN s", "RANDOM s", "RANDOM/PATTERN"),
        rows,
    )

    for n in SIZES:
        assert seconds[("pattern", n)] < seconds[("random", n)], (
            f"PATTERN must be faster at n={n}"
        )
