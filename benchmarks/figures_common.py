"""Shared infrastructure for the figure-reproduction benchmarks.

Each ``test_figNN_*`` module regenerates one figure of the paper's
evaluation (Section 6).  The helpers here build the shared test database,
run generation campaigns, and render/persist the figure series so the
numbers land both in the terminal output and in ``benchmarks/results/``.

Scale notes: Figures 8-10 run at full paper scale (n = 15 and 30 rules,
all nC2 pairs).  The compression figures (11-14) keep the paper's sweep
*shapes* but run at reduced (n, k) sizes so the whole benchmark suite
completes in minutes on a laptop -- the paper's own numbers come from a
production SQL Server testbed.  EXPERIMENTS.md records the mapping.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import NULL_TRACER, MetricsRegistry, RecordingTracer, Tracer
from repro.rules import RuleRegistry, default_registry
from repro.service import PlanService
from repro.storage.database import Database
from repro.testing import (
    CostOracle,
    QueryGenerator,
    TestSuite,
    TestSuiteBuilder,
    TopKStats,
    baseline_plan,
    pair_nodes,
    set_multicover_plan,
    singleton_nodes,
    top_k_independent_plan,
)
from repro.workloads import tpch_database

RESULTS_DIR = Path(__file__).parent / "results"

#: One shared database + registry for every figure (the paper fixes the
#: test database up front, Section 2.3).
DB_SEED = 0


@lru_cache(maxsize=1)
def shared_database() -> Database:
    return tpch_database(seed=DB_SEED)


def registry() -> RuleRegistry:
    return default_registry()


def bench_workers() -> int:
    """Worker-pool size for the benchmarks (REPRO_BENCH_WORKERS, default 1)."""
    return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))


def trace_out_path() -> Optional[Path]:
    """Where to archive the benchmark trace, if tracing was requested.

    Set by ``pytest benchmarks --trace-out PATH`` (see conftest) or the
    ``REPRO_TRACE_OUT`` environment variable directly.
    """
    raw = os.environ.get("REPRO_TRACE_OUT", "")
    return Path(raw) if raw else None


@lru_cache(maxsize=1)
def bench_tracer() -> Tracer:
    """The benchmark-wide tracer: recording iff a trace archive was asked
    for, the zero-cost null tracer otherwise."""
    if trace_out_path() is None:
        return NULL_TRACER
    # Full figure runs make millions of rule attempts; summary detail
    # keeps recording overhead low, and a deep ring keeps the interesting
    # tail (the later, larger sweep points) plus a drop count.
    return RecordingTracer(capacity=1 << 20, detail="summary")


@lru_cache(maxsize=1)
def bench_metrics() -> Optional[MetricsRegistry]:
    return MetricsRegistry() if trace_out_path() is not None else None


@lru_cache(maxsize=1)
def shared_service() -> PlanService:
    """One fingerprint-cached :class:`PlanService` shared by every figure."""
    return PlanService(
        shared_database(), registry=registry(), workers=bench_workers(),
        tracer=bench_tracer(), metrics=bench_metrics(),
    )


def write_trace_archive() -> Optional[Path]:
    """Persist the benchmark trace (chrome format) plus the metrics
    snapshot next to ``benchmarks/results``; no-op when tracing is off."""
    path = trace_out_path()
    if path is None:
        return None
    tracer = bench_tracer()
    if not tracer.enabled:
        return None
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(tracer.to_chrome_json())
    metrics = bench_metrics()
    if metrics is not None:
        path.with_suffix(".metrics.json").write_text(
            json.dumps(metrics.snapshot(), indent=2, sort_keys=True)
        )
    return path


def rule_prefix(n: int) -> List[str]:
    """The first ``n`` exploration rules (the paper's 'number of rules')."""
    names = registry().exploration_rule_names
    if n > len(names):
        raise ValueError(f"only {len(names)} exploration rules available")
    return names[:n]


# ------------------------------------------------------------- campaigns


@lru_cache(maxsize=None)
def singleton_generation_campaign(
    method: str, n: int, seed: int = 123, max_trials: int = 0
) -> Tuple[Tuple[str, int, bool, float], ...]:
    """Per-rule (name, trials, succeeded, seconds) for one method."""
    generator = QueryGenerator(
        shared_database(), registry(), seed=seed, service=shared_service()
    )
    rows = []
    for name in rule_prefix(n):
        if method == "pattern":
            outcome = generator.pattern_query_for_rule(
                name, max_trials=max_trials or 25
            )
        else:
            outcome = generator.random_query_for_rule(
                name, max_trials=max_trials or 500
            )
        rows.append(
            (name, outcome.trials, outcome.succeeded, outcome.elapsed_seconds)
        )
    return tuple(rows)


@lru_cache(maxsize=None)
def pair_generation_campaign(
    method: str, n: int, seed: int = 123, max_trials: int = 0
) -> Tuple[Tuple[str, str, int, bool, float], ...]:
    """Per-pair (rule1, rule2, trials, succeeded, seconds)."""
    generator = QueryGenerator(
        shared_database(), registry(), seed=seed, service=shared_service()
    )
    rows = []
    for first, second in itertools.combinations(rule_prefix(n), 2):
        if method == "pattern":
            outcome = generator.pattern_query_for_pair(
                first, second, max_trials=max_trials or 60
            )
        else:
            outcome = generator.random_query_for_pair(
                first, second, max_trials=max_trials or 400
            )
        rows.append(
            (
                first,
                second,
                outcome.trials,
                outcome.succeeded,
                outcome.elapsed_seconds,
            )
        )
    return tuple(rows)


# ----------------------------------------------------------- compression


@lru_cache(maxsize=None)
def singleton_suite(n: int, k: int, seed: int = 7) -> TestSuite:
    builder = TestSuiteBuilder(
        shared_database(), registry(), seed=seed, extra_operators=3,
        service=shared_service(),
    )
    return builder.build(singleton_nodes(rule_prefix(n)), k=k)


@lru_cache(maxsize=None)
def pair_suite(n: int, k: int, seed: int = 7) -> TestSuite:
    builder = TestSuiteBuilder(
        shared_database(), registry(), seed=seed, extra_operators=0,
        service=shared_service(),
    )
    return builder.build(pair_nodes(rule_prefix(n)), k=k)


def _oracle(service: Optional[PlanService] = None) -> CostOracle:
    return CostOracle(
        shared_database(), registry(), service=service or shared_service()
    )


def compression_costs(suite: TestSuite) -> Dict[str, float]:
    """Total execution cost of BASELINE / SMC / TOPK for one suite."""
    oracle = _oracle()
    plans = {
        "BASELINE": baseline_plan(suite, oracle),
        "SMC": set_multicover_plan(suite, oracle),
        "TOPK": top_k_independent_plan(suite, oracle),
    }
    return {name: plan.total_cost for name, plan in plans.items()}


def timed_edge_cost_passes(suite: TestSuite) -> Dict[str, float]:
    """Build the full TOPK bipartite graph twice against one fresh service:
    a cold pass (every edge cost computed, batched over the worker pool)
    and a warm pass with a fresh oracle (pure fingerprint-cache hits).

    The cold/warm wall-clock pair is the Figure 12 service-layer
    measurement: it shows what the shared :class:`PlanService` buys when a
    second compression strategy (or a re-run) asks for the same graph.
    """
    service = PlanService(
        shared_database(), registry=registry(), workers=bench_workers()
    )
    start = time.perf_counter()
    top_k_independent_plan(suite, _oracle(service))
    cold = time.perf_counter() - start
    start = time.perf_counter()
    top_k_independent_plan(suite, _oracle(service))
    warm = time.perf_counter() - start
    return {
        "cold_seconds": cold,
        "warm_seconds": warm,
        "speedup": cold / max(warm, 1e-9),
        "service": service.counters.as_dict(),
    }


def monotonicity_comparison(suite: TestSuite) -> Dict[str, float]:
    """Optimizer invocations and solution cost, with/without monotonicity.

    Both oracles share the benchmark-wide service, so ``invocations_*``
    count *logical* ``Cost(q, ¬R)`` requests -- the paper's Figure 14
    measurement -- regardless of how many the fingerprint cache absorbed
    physically (``shared_service().counters`` tracks that side).
    """
    plain_oracle = _oracle()
    plain_stats = TopKStats()
    plain = top_k_independent_plan(suite, plain_oracle, stats=plain_stats)

    mono_oracle = _oracle()
    mono_stats = TopKStats()
    mono = top_k_independent_plan(
        suite, mono_oracle, use_monotonicity=True, stats=mono_stats
    )
    return {
        "invocations_plain": plain_oracle.invocations,
        "invocations_mono": mono_oracle.invocations,
        "cost_plain": plain.total_cost,
        "cost_mono": mono.total_cost,
        "skipped": mono_stats.edge_costs_skipped,
        "service_hits": shared_service().counters.hits,
        "service_computed": shared_service().counters.computed,
    }


# ---------------------------------------------------------------- report


def emit_figure(
    capsys, figure: str, title: str, header: Sequence[str], rows: Sequence[Sequence]
) -> None:
    """Print one figure's series to the terminal and persist it as JSON."""
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "figure": figure,
        "title": title,
        "header": list(header),
        "rows": [list(row) for row in rows],
        "generated_at": time.strftime("%Y-%m-%d %H:%M:%S"),
    }
    (RESULTS_DIR / f"{figure}.json").write_text(
        json.dumps(payload, indent=2)
    )

    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(header))
    ]
    lines = [
        f"\n=== {figure}: {title} ===",
        "  ".join(str(h).ljust(w) for h, w in zip(header, widths)),
    ]
    for row in rows:
        lines.append(
            "  ".join(str(v).ljust(w) for v, w in zip(row, widths))
        )
    text = "\n".join(lines)
    if capsys is not None:
        with capsys.disabled():
            print(text)
    else:
        print(text)
