"""Ablation: pattern-based generation with and without generation hints.

DESIGN.md calls out one deliberate extension to the paper's Section 3.1:
rules export argument-level *generation hints*, implementing the paper's
remark that semantic constraints "can potentially be added as additional
preconditions on the input pattern and leveraged by the query generation
module".  This ablation quantifies that choice: three configurations over
all exploration rules --

* RANDOM        -- no pattern knowledge at all (the paper's baseline);
* PATTERN-HINTS -- structure from the rule pattern, random arguments;
* PATTERN+HINTS -- structure plus argument hints (the shipped default).

Expected shape: structure alone captures most of the benefit (the paper's
claim), hints tighten the remaining hint-dependent rules (e.g.
SelectTrueRemoval, GbAggRemoveOnKey) from tens of trials to a handful.
"""

import random

import pytest

from figures_common import emit_figure, shared_database, shared_service
from repro.optimizer.result import OptimizationError
from repro.logical.validate import ValidationError, validate_tree
from repro.rules.registry import default_registry
from repro.testing.builders import GenerationFailure
from repro.testing.generator import QueryGenerator
from repro.testing.pattern_gen import PatternInstantiator, merge_hints

MAX_TRIALS = 120


def _pattern_campaign(use_hints: bool, seed: int = 321):
    database = shared_database()
    registry = default_registry()
    rng = random.Random(seed)
    instantiator = PatternInstantiator(
        database.catalog, rng, database.stats_repository()
    )
    service = shared_service()
    totals = {}
    for rule in registry.exploration_rules:
        hints = merge_hints([rule]) if use_hints else {}
        trials = MAX_TRIALS
        for trial in range(1, MAX_TRIALS + 1):
            try:
                tree = instantiator.instantiate(rule.pattern, hints)
                validate_tree(tree, database.catalog)
                result = service.optimize(tree)
            except (GenerationFailure, ValidationError, OptimizationError):
                continue
            if rule.name in result.rules_exercised:
                trials = trial
                break
        totals[rule.name] = trials
    return totals


def test_ablation_generation_hints(benchmark, capsys):
    registry = default_registry()
    generator = QueryGenerator(
        shared_database(), registry, seed=321, service=shared_service()
    )

    with_hints = benchmark.pedantic(
        lambda: _pattern_campaign(use_hints=True), rounds=1, iterations=1
    )
    without_hints = _pattern_campaign(use_hints=False)
    random_totals = {
        rule.name: generator.random_query_for_rule(
            rule.name, max_trials=MAX_TRIALS * 4
        ).trials
        for rule in registry.exploration_rules
    }

    rows = []
    for name in sorted(with_hints):
        rows.append(
            (name, with_hints[name], without_hints[name], random_totals[name])
        )
    rows.append(
        (
            "TOTAL",
            sum(with_hints.values()),
            sum(without_hints.values()),
            sum(random_totals.values()),
        )
    )
    emit_figure(
        capsys,
        "ablation_hints",
        "trials per rule: PATTERN+hints vs PATTERN-hints vs RANDOM",
        ("rule", "PATTERN+hints", "PATTERN-hints", "RANDOM"),
        rows,
    )

    total_hinted = sum(with_hints.values())
    total_bare = sum(without_hints.values())
    total_random = sum(random_totals.values())
    # Structure alone already beats RANDOM decisively...
    assert total_bare * 2 < total_random
    # ...and hints strictly tighten the pattern generator further.
    assert total_hinted < total_bare
