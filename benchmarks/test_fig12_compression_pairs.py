"""Figure 12: Test-suite compression for rule pairs.

Paper result: TOPK consistently produces the lowest-cost suites; SMC
varies from good to *worse than BASELINE*, because it ignores edge costs
(the cost of a query with a rule pair disabled), and with pairs there are
many more opportunities for a cheap-looking query to become very expensive
once a pair of rules is turned off.  Expected shape here: TOPK <= SMC and
TOPK < BASELINE at every point.

Scale note: the paper sweeps up to 30 rules (435 pairs) with k=10 on a
production testbed; we keep the sweep shape at (n pairs, k) sizes that run
in minutes -- see EXPERIMENTS.md.
"""

import pytest

from figures_common import (
    compression_costs,
    emit_figure,
    pair_suite,
    timed_edge_cost_passes,
)

SIZES = (4, 6, 8, 10)
K = 3


def test_fig12_pair_compression(benchmark, capsys):
    series = {}

    def run_all():
        for n in SIZES:
            suite = pair_suite(n, K)
            series[n] = compression_costs(suite)
        return series

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        (
            f"n={n} ({n * (n - 1) // 2} pairs)",
            round(series[n]["BASELINE"], 1),
            round(series[n]["SMC"], 1),
            round(series[n]["TOPK"], 1),
        )
        for n in SIZES
    ]
    emit_figure(
        capsys,
        "fig12",
        f"test-suite execution cost, rule pairs (k={K})",
        ("rules", "BASELINE", "SMC", "TOPK"),
        rows,
    )

    for n in SIZES:
        costs = series[n]
        assert costs["TOPK"] < costs["BASELINE"], f"TOPK must beat BASELINE (n={n})"
        assert costs["TOPK"] <= costs["SMC"] * 1.05, (
            f"TOPK should be the best approach (n={n})"
        )


def test_fig12_edge_cost_service_timing(capsys):
    """Service-layer measurement: building the largest bipartite graph cold
    vs against a warm fingerprint cache (fresh oracle both times)."""
    timing = timed_edge_cost_passes(pair_suite(max(SIZES), K))
    emit_figure(
        capsys,
        "fig12_timing",
        f"TOPK edge-cost construction, cold vs warm service (n={max(SIZES)}, k={K})",
        ("pass", "seconds", "service computed", "service hits"),
        [
            (
                "cold",
                round(timing["cold_seconds"], 4),
                timing["service"]["computed"],
                0,
            ),
            (
                "warm",
                round(timing["warm_seconds"], 4),
                0,
                timing["service"]["hits"],
            ),
            ("speedup", round(timing["speedup"], 1), "", ""),
        ],
    )
    assert timing["service"]["hits"] > 0, "warm pass must hit the cache"
    assert timing["speedup"] >= 1.5, (
        f"warm edge-cost pass must be >=1.5x faster, got {timing['speedup']:.2f}x"
    )
