"""Benchmark-suite pytest hooks: the ``--trace-out`` flag.

``pytest benchmarks --trace-out results/bench.trace.json`` runs every
figure with the benchmark-wide recording tracer attached to the shared
:class:`~repro.service.PlanService` and, at session end, archives a
chrome-trace (``chrome://tracing`` / Perfetto) file plus a
``*.metrics.json`` snapshot next to ``benchmarks/results``.  The flag is
plumbed through the ``REPRO_TRACE_OUT`` environment variable so figure
helpers stay importable outside pytest.
"""

from __future__ import annotations

import os


def pytest_addoption(parser):
    parser.addoption(
        "--trace-out",
        action="store",
        default=None,
        metavar="PATH",
        help="archive a chrome-trace of the benchmark run to PATH "
        "(plus PATH-with-.metrics.json for the metrics snapshot)",
    )


def pytest_configure(config):
    path = config.getoption("--trace-out", default=None)
    if path:
        os.environ["REPRO_TRACE_OUT"] = str(path)


def pytest_sessionfinish(session, exitstatus):
    if not os.environ.get("REPRO_TRACE_OUT"):
        return
    from figures_common import write_trace_archive

    written = write_trace_archive()
    if written is not None:
        print(f"\nbenchmark trace archived to {written}")
