"""Figure 8: Random vs. Pattern-based generation for singleton rules.

Paper result: PATTERN generates a query exercising each rule in 1-4 trials
(38 total over 30 rules); RANDOM needs up to ~40 trials for some rules
(234 total).  Expected shape here: PATTERN total an order of magnitude
below RANDOM, with a small per-rule maximum.
"""

import pytest

from figures_common import emit_figure, singleton_generation_campaign

N_RULES = 30  # paper scale


def test_fig08_trials_per_singleton_rule(benchmark, capsys):
    random_rows = singleton_generation_campaign("random", N_RULES)

    # Benchmark the PATTERN campaign itself (the fast path under test).
    pattern_rows = benchmark.pedantic(
        lambda: singleton_generation_campaign("pattern", N_RULES),
        rounds=1,
        iterations=1,
    )

    by_rule = {name: trials for name, trials, _, _ in random_rows}
    rows = [
        (name, trials, by_rule[name])
        for name, trials, _succeeded, _secs in pattern_rows
    ]
    total_pattern = sum(row[1] for row in rows)
    total_random = sum(row[2] for row in rows)
    rows.append(("TOTAL", total_pattern, total_random))
    emit_figure(
        capsys,
        "fig08",
        f"trials per singleton rule (n={N_RULES})",
        ("rule", "PATTERN trials", "RANDOM trials"),
        rows,
    )

    # Shape assertions mirroring the paper's claims.
    assert all(ok for _, _, ok, _ in pattern_rows), "PATTERN must cover all"
    max_pattern = max(trials for _, trials, _, _ in pattern_rows)
    assert max_pattern <= 8, f"PATTERN should need few trials ({max_pattern})"
    assert total_pattern * 3 < total_random, (
        "PATTERN must dominate RANDOM in total trials"
    )
