"""Figure 9: Random vs. Pattern-based generation for rule pairs (trials).

Paper result (log-scale y-axis): n=15 -> RANDOM 1187 vs PATTERN 383
trials; n=30 -> RANDOM >13,000 vs PATTERN <1,000 (a 13x gap).  The gap
grows with n because a random query's chance of exercising *both* rules of
a pair drops rapidly.  Expected shape here: PATTERN totals well below
RANDOM at both n, with the ratio at n=30 at least as large as at n=15.
"""

import pytest

from figures_common import emit_figure, pair_generation_campaign

SIZES = (15, 30)  # paper scale


def test_fig09_trials_for_rule_pairs(benchmark, capsys):
    totals = {}

    def run_all():
        for n in SIZES:
            for method in ("pattern", "random"):
                rows = pair_generation_campaign(method, n)
                totals[(method, n)] = sum(row[2] for row in rows)
        return totals

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        (
            f"n={n} ({n * (n - 1) // 2} pairs)",
            totals[("pattern", n)],
            totals[("random", n)],
            round(totals[("random", n)] / max(1, totals[("pattern", n)]), 1),
        )
        for n in SIZES
    ]
    emit_figure(
        capsys,
        "fig09",
        "total trials for rule pairs",
        ("rules", "PATTERN trials", "RANDOM trials", "RANDOM/PATTERN"),
        rows,
    )

    for n in SIZES:
        assert totals[("pattern", n)] * 2 < totals[("random", n)], (
            f"PATTERN must dominate RANDOM at n={n}"
        )
    ratio_small = totals[("random", SIZES[0])] / totals[("pattern", SIZES[0])]
    ratio_large = totals[("random", SIZES[1])] / totals[("pattern", SIZES[1])]
    assert ratio_large >= 0.8 * ratio_small, (
        "the PATTERN advantage should not shrink materially with n"
    )
