"""Figure 11: Test-suite compression for singleton rules.

Paper result (log-scale y-axis, k=10, n swept): SMC and TOPK both obtain
suites one to three orders of magnitude cheaper than BASELINE, because a
single query can validate many rules and cheap queries can stand in for
expensive ones.  Expected shape here: BASELINE highest at every n; both
SMC and TOPK well below it.
"""

import pytest

from figures_common import compression_costs, emit_figure, singleton_suite

SIZES = (5, 10, 15, 20, 25, 30)
K = 10  # paper's test-suite size


def test_fig11_singleton_compression(benchmark, capsys):
    series = {}

    def run_all():
        for n in SIZES:
            suite = singleton_suite(n, K)
            series[n] = compression_costs(suite)
        return series

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        (
            n,
            round(series[n]["BASELINE"], 1),
            round(series[n]["SMC"], 1),
            round(series[n]["TOPK"], 1),
        )
        for n in SIZES
    ]
    emit_figure(
        capsys,
        "fig11",
        f"test-suite execution cost, singleton rules (k={K})",
        ("n rules", "BASELINE", "SMC", "TOPK"),
        rows,
    )

    for n in SIZES:
        costs = series[n]
        assert costs["SMC"] < costs["BASELINE"], f"SMC must beat BASELINE (n={n})"
        assert costs["TOPK"] < costs["BASELINE"], f"TOPK must beat BASELINE (n={n})"
    # The paper reports gaps "anywhere between one and three orders of
    # magnitude" -- i.e. the margin varies with the suite drawn.  Assert
    # the robust form: compression wins everywhere (above) and wins big
    # somewhere in the sweep.
    best_gap = max(
        series[n]["BASELINE"] / series[n]["TOPK"] for n in SIZES
    )
    assert best_gap >= 4.0, f"largest BASELINE/TOPK gap only {best_gap:.1f}x"
